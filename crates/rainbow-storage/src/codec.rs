//! Binary codec for durable log records and the segment frame format.
//!
//! The disk engine stores [`LogRecord`]s as length-prefixed, CRC-checked
//! *frames* inside append-only segment files:
//!
//! ```text
//! frame   := [payload_len: u32 LE] [crc32(payload): u32 LE] [payload]
//! payload := one encoded LogRecord (tag byte + fields, all little-endian)
//! ```
//!
//! The CRC covers only the payload; the length field is implicitly checked
//! because a damaged length either points past the end of the file (a torn
//! tail) or frames a byte range whose CRC cannot match. Decoding therefore
//! distinguishes three failure classes the recovery scanner cares about:
//! an incomplete header or payload (torn write), a checksum mismatch
//! (flipped bits), and a payload that passes its checksum but does not
//! parse (a format bug, never a disk fault).

use crate::wal::LogRecord;
use rainbow_common::{ItemId, SiteId, TxnId, Value, Version};
use std::fmt;

/// Size in bytes of a frame header (`payload_len` + `crc32`).
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound accepted for a single frame payload. A length field larger
/// than this is treated as damage rather than a real record, which keeps a
/// corrupted length from asking the scanner to wait for gigabytes of
/// payload that will never exist.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    // CRC-32 (IEEE 802.3), reflected, polynomial 0xEDB88320.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Why a payload failed to decode as a [`LogRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undecodable record: {}", self.0)
    }
}

/// Why a frame failed to decode from a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer than [`FRAME_HEADER_LEN`] bytes remain: the header itself was
    /// torn mid-write.
    IncompleteHeader,
    /// The header promises more payload bytes than remain in the buffer:
    /// the payload was torn mid-write (or the length field is damaged).
    Truncated {
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        available: usize,
    },
    /// The payload checksum does not match: at least one bit flipped.
    BadCrc {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the payload bytes found.
        computed: u32,
    },
    /// The checksum matched but the payload does not parse as a record.
    /// This is a codec/format bug, not a disk fault — a torn or flipped
    /// write would have failed the CRC first.
    Malformed(CodecError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::IncompleteHeader => write!(f, "incomplete frame header"),
            FrameError::Truncated {
                expected,
                available,
            } => write!(
                f,
                "truncated payload: header promises {expected} bytes, {available} present"
            ),
            FrameError::BadCrc { stored, computed } => write!(
                f,
                "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            FrameError::Malformed(err) => write!(f, "{err}"),
        }
    }
}

impl FrameError {
    /// True when the frame looks like a write that never finished (torn
    /// header or torn payload) rather than in-place damage.
    pub fn is_torn(&self) -> bool {
        matches!(
            self,
            FrameError::IncompleteHeader | FrameError::Truncated { .. }
        )
    }
}

// ---------------------------------------------------------------------------
// Record payload encoding
// ---------------------------------------------------------------------------

const TAG_BEGIN: u8 = 0;
const TAG_PREPARE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;

const VALUE_NULL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_FLOAT: u8 = 2;
const VALUE_TEXT: u8 = 3;
const VALUE_BYTES: u8 = 4;

/// Encodes one record as a payload (no frame header).
pub fn encode_record(record: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match record {
        LogRecord::Begin { txn } => {
            out.push(TAG_BEGIN);
            put_txn(&mut out, *txn);
        }
        LogRecord::Prepare { txn, writes } => {
            out.push(TAG_PREPARE);
            put_txn(&mut out, *txn);
            put_writes(&mut out, writes);
        }
        LogRecord::Commit { txn, writes } => {
            out.push(TAG_COMMIT);
            put_txn(&mut out, *txn);
            put_writes(&mut out, writes);
        }
        LogRecord::Abort { txn } => {
            out.push(TAG_ABORT);
            put_txn(&mut out, *txn);
        }
        LogRecord::Checkpoint { state } => {
            out.push(TAG_CHECKPOINT);
            put_writes(&mut out, state);
        }
    }
    out
}

/// Decodes one record payload. The whole payload must be consumed;
/// trailing bytes are an error.
pub fn decode_record(payload: &[u8]) -> Result<LogRecord, CodecError> {
    let mut cursor = Cursor {
        bytes: payload,
        pos: 0,
    };
    let tag = cursor.u8()?;
    let record = match tag {
        TAG_BEGIN => LogRecord::Begin { txn: cursor.txn()? },
        TAG_PREPARE => LogRecord::Prepare {
            txn: cursor.txn()?,
            writes: cursor.writes()?,
        },
        TAG_COMMIT => LogRecord::Commit {
            txn: cursor.txn()?,
            writes: cursor.writes()?,
        },
        TAG_ABORT => LogRecord::Abort { txn: cursor.txn()? },
        TAG_CHECKPOINT => LogRecord::Checkpoint {
            state: cursor.writes()?,
        },
        other => return Err(CodecError(format!("unknown record tag {other}"))),
    };
    if cursor.pos != payload.len() {
        return Err(CodecError(format!(
            "{} trailing bytes after record",
            payload.len() - cursor.pos
        )));
    }
    Ok(record)
}

/// Encodes one record as a complete frame (header + payload).
pub fn encode_frame(record: &LogRecord) -> Vec<u8> {
    let payload = encode_record(record);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes the frame starting at `offset` in `buf`. On success returns the
/// record and the offset of the next frame.
pub fn decode_frame(buf: &[u8], offset: usize) -> Result<(LogRecord, usize), FrameError> {
    let remaining = &buf[offset.min(buf.len())..];
    if remaining.len() < FRAME_HEADER_LEN {
        return Err(FrameError::IncompleteHeader);
    }
    let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap());
    let stored = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
    let available = remaining.len() - FRAME_HEADER_LEN;
    if len > MAX_FRAME_LEN || len as usize > available {
        return Err(FrameError::Truncated {
            expected: len as usize,
            available,
        });
    }
    let payload = &remaining[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize];
    let computed = crc32(payload);
    if computed != stored {
        return Err(FrameError::BadCrc { stored, computed });
    }
    let record = decode_record(payload).map_err(FrameError::Malformed)?;
    Ok((record, offset + FRAME_HEADER_LEN + len as usize))
}

fn put_txn(out: &mut Vec<u8>, txn: TxnId) {
    out.extend_from_slice(&txn.home.0.to_le_bytes());
    out.extend_from_slice(&txn.seq.to_le_bytes());
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(VALUE_NULL),
        Value::Int(v) => {
            out.push(VALUE_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            out.push(VALUE_FLOAT);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Text(v) => {
            out.push(VALUE_TEXT);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        Value::Bytes(v) => {
            out.push(VALUE_BYTES);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
    }
}

fn put_writes(out: &mut Vec<u8>, writes: &[(ItemId, Value, Version)]) {
    out.extend_from_slice(&(writes.len() as u32).to_le_bytes());
    for (item, value, version) in writes {
        let name = item.name().as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        put_value(out, value);
        out.extend_from_slice(&version.0.to_le_bytes());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError(format!(
                "record ends early: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn txn(&mut self) -> Result<TxnId, CodecError> {
        let home = SiteId(self.u32()?);
        let seq = self.u64()?;
        Ok(TxnId { home, seq })
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.u8()? {
            VALUE_NULL => Ok(Value::Null),
            VALUE_INT => Ok(Value::Int(self.i64()?)),
            VALUE_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            VALUE_TEXT => {
                let len = self.u32()? as usize;
                let bytes = self.take(len)?;
                String::from_utf8(bytes.to_vec())
                    .map(Value::Text)
                    .map_err(|_| CodecError("text value is not UTF-8".to_string()))
            }
            VALUE_BYTES => {
                let len = self.u32()? as usize;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            other => Err(CodecError(format!("unknown value tag {other}"))),
        }
    }

    fn writes(&mut self) -> Result<Vec<(ItemId, Value, Version)>, CodecError> {
        let count = self.u32()? as usize;
        // Guard against a damaged count asking for a huge reservation: every
        // write needs at least name-len + value-tag + version bytes.
        if count > self.bytes.len() {
            return Err(CodecError(format!("implausible write count {count}")));
        }
        let mut writes = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = self.u16()? as usize;
            let name_bytes = self.take(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CodecError("item name is not UTF-8".to_string()))?;
            let item = ItemId::new(name);
            let value = self.value()?;
            let version = Version(self.u64()?);
            writes.push((item, value, version));
        }
        Ok(writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(3), seq)
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: txn(1) },
            LogRecord::Prepare {
                txn: txn(2),
                writes: vec![
                    (ItemId::new("x"), Value::Int(-42), Version(7)),
                    (ItemId::new("name"), Value::Text("héllo".into()), Version(1)),
                ],
            },
            LogRecord::Commit {
                txn: txn(2),
                writes: vec![
                    (ItemId::new("f"), Value::Float(2.5), Version(9)),
                    (ItemId::new("b"), Value::Bytes(vec![0, 255, 7]), Version(2)),
                    (ItemId::new("n"), Value::Null, Version(3)),
                ],
            },
            LogRecord::Abort { txn: txn(4) },
            LogRecord::Checkpoint {
                state: vec![(ItemId::new("x"), Value::Int(0), Version(0))],
            },
            LogRecord::Checkpoint { state: vec![] },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trip() {
        for record in sample_records() {
            let payload = encode_record(&record);
            let decoded = decode_record(&payload).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn frame_round_trip_and_chaining() {
        let records = sample_records();
        let mut buf = Vec::new();
        for record in &records {
            buf.extend_from_slice(&encode_frame(record));
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < buf.len() {
            let (record, next) = decode_frame(&buf, offset).unwrap();
            decoded.push(record);
            offset = next;
        }
        assert_eq!(decoded, records);
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn every_single_flipped_byte_is_detected() {
        let record = LogRecord::Commit {
            txn: txn(9),
            writes: vec![(ItemId::new("acct"), Value::Int(500), Version(12))],
        };
        let frame = encode_frame(&record);
        for i in 0..frame.len() {
            let mut damaged = frame.clone();
            damaged[i] ^= 0x40;
            if let Ok((decoded, _)) = decode_frame(&damaged, 0) {
                panic!("flipping byte {i} silently decoded {decoded:?} instead of failing")
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let record = LogRecord::Prepare {
            txn: txn(5),
            writes: vec![(ItemId::new("y"), Value::Text("payload".into()), Version(3))],
        };
        let frame = encode_frame(&record);
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut], 0).unwrap_err();
            assert!(
                err.is_torn(),
                "cut at {cut} gave {err:?}, expected a torn-write error"
            );
        }
    }

    #[test]
    fn bad_crc_is_reported_as_such() {
        let frame_ok = encode_frame(&LogRecord::Abort { txn: txn(1) });
        let mut frame = frame_ok.clone();
        let last = frame.len() - 1;
        frame[last] ^= 0x01; // payload bit flip; header intact
        assert!(matches!(
            decode_frame(&frame, 0),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn absurd_length_is_truncation_not_allocation() {
        let mut frame = vec![0u8; FRAME_HEADER_LEN];
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame, 0),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_after_payload_are_malformed() {
        let mut payload = encode_record(&LogRecord::Begin { txn: txn(1) });
        payload.push(0xAB);
        assert!(decode_record(&payload).is_err());
    }
}
