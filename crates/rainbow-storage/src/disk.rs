//! The on-disk log-structured storage engine.
//!
//! One directory per site holds a sequence of append-only **segment
//! files** (`000001.seg`, `000002.seg`, ...). Each segment starts with an
//! 8-byte header (magic `RBSG` + format version) followed by CRC-checked
//! frames in the [`crate::codec`] format. Records are buffered in memory
//! until a *force*, which writes the buffer to the active segment and
//! `fsync`s it — so the on-disk prefix is exactly the forced prefix, and a
//! power loss can only lose what durability semantics allow it to lose.
//!
//! **Group commit.** Under load, many transactions force the log
//! concurrently. With fsync batching on (the default), the first forcer
//! becomes the *leader*: it writes out everything buffered so far and pays
//! one `fsync` for the whole batch; the others wait on a condition
//! variable until the leader's sync covers their record. With batching off
//! every forced append pays its own sync — the baseline
//! `benches/storage.rs` compares against.
//!
//! **Rotation and compaction.** The active segment is rotated once it
//! exceeds `segment_max_bytes`. When the total log exceeds
//! `compaction_threshold_bytes` the engine asks for a checkpoint
//! ([`StorageEngine::wants_compaction`]); compaction writes a fresh
//! segment holding the checkpoint state plus every undecided prepare, then
//! deletes all older segments.
//!
//! **Recovery.** [`StorageEngine::recover`] replays the segments in
//! order. A torn frame (incomplete header or payload) or a bad-CRC frame
//! at the very tail is the expected signature of a power loss and is
//! truncated away; damage anywhere *else* — mid-log, or followed by valid
//! frames — cannot be explained by a torn write and surfaces as
//! [`RainbowError::CorruptLog`].
//!
//! **I/O errors.** Write or sync failures on the commit path are
//! unrecoverable here: after a failed `fsync` the kernel may have dropped
//! the dirty pages, so retrying would silently un-lose nothing (the
//! PostgreSQL "fsyncgate" lesson). The engine panics the process rather
//! than acknowledge a commit it cannot guarantee.

use crate::codec::{self, FrameError, FRAME_HEADER_LEN};
use crate::engine::{EngineKind, PowerLossFault, StorageEngine};
use crate::recovery::{replay, RecoveryOutcome};
use crate::wal::LogRecord;
use parking_lot::{Condvar, Mutex};
use rainbow_common::{ItemId, RainbowError, RainbowResult, SiteId, TxnId, Value, Version};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"RBSG";
/// On-disk format version written into every segment header.
pub const SEGMENT_FORMAT_VERSION: u32 = 1;
/// Size of the segment header (magic + version).
pub const SEGMENT_HEADER_LEN: usize = 8;

fn segment_header() -> [u8; SEGMENT_HEADER_LEN] {
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[0..4].copy_from_slice(SEGMENT_MAGIC);
    header[4..8].copy_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
    header
}

/// Whether the simulated machine is powered.
#[derive(Debug)]
enum Power {
    /// Running, with the active segment open for appending.
    On {
        /// The active segment file, positioned at its end.
        file: File,
    },
    /// Power lost (or never recovered): appends are dropped, forces
    /// return without durability. [`StorageEngine::recover`] turns the
    /// engine back on.
    Off,
}

impl Power {
    fn is_off(&self) -> bool {
        matches!(self, Power::Off)
    }
}

#[derive(Debug)]
struct DiskState {
    power: Power,
    /// Sequence number of the active segment.
    active_seq: u64,
    /// Bytes written (not necessarily synced) to the active segment file.
    flushed_len: u64,
    /// Total bytes of all sealed (rotated-out) segments.
    sealed_bytes: u64,
    /// Encoded frames appended but not yet written to the file.
    buf: Vec<u8>,
    /// Number of records currently sitting in `buf`.
    buf_records: usize,
    /// Total appends so far; each append gets the next sequence number.
    appended: u64,
    /// Highest append sequence number known to be on stable storage.
    synced_seq: u64,
    /// True while a group-commit leader is off-lock inside `fsync`.
    sync_in_flight: bool,
    /// Number of `fsync`s performed (batches, not forced appends).
    force_count: u64,
    /// Records in the log (on disk + buffered).
    record_count: usize,
    /// Prepares without a later commit/abort, carried across compaction.
    undecided: BTreeMap<TxnId, Vec<(ItemId, Value, Version)>>,
}

/// The on-disk log-structured engine. See the module docs for the format
/// and concurrency model.
#[derive(Debug)]
pub struct DiskEngine {
    dir: PathBuf,
    fsync_batching: bool,
    segment_max_bytes: u64,
    compaction_threshold_bytes: u64,
    tracer: Option<Arc<rainbow_trace::Tracer>>,
    state: Mutex<DiskState>,
    synced: Condvar,
}

impl DiskEngine {
    /// Creates an engine over `dir` (one site's segment directory). The
    /// engine starts powered off; call [`StorageEngine::recover`] to scan
    /// the directory and start appending.
    pub fn new(
        dir: impl Into<PathBuf>,
        config: &crate::engine::StorageConfig,
        tracer: Option<Arc<rainbow_trace::Tracer>>,
    ) -> Self {
        DiskEngine {
            dir: dir.into(),
            fsync_batching: config.fsync_batching,
            segment_max_bytes: config.segment_max_bytes,
            compaction_threshold_bytes: config.compaction_threshold_bytes,
            tracer,
            state: Mutex::new(DiskState {
                power: Power::Off,
                active_seq: 0,
                flushed_len: 0,
                sealed_bytes: 0,
                buf: Vec::new(),
                buf_records: 0,
                appended: 0,
                synced_seq: 0,
                sync_in_flight: false,
                force_count: 0,
                record_count: 0,
                undecided: BTreeMap::new(),
            }),
            synced: Condvar::new(),
        }
    }

    /// The directory this engine's segments live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files currently in the directory.
    pub fn segment_count(&self) -> usize {
        list_segments(&self.dir).map_or(0, |segs| segs.len())
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{seq:06}.seg"))
    }

    /// Tracks the prepared-but-undecided set as records are appended, so
    /// compaction can carry in-doubt prepares into the fresh segment
    /// without rescanning the log.
    fn note_record(state: &mut DiskState, record: &LogRecord) {
        match record {
            LogRecord::Prepare { txn, writes } => {
                state.undecided.insert(*txn, writes.clone());
            }
            LogRecord::Commit { txn, .. } | LogRecord::Abort { txn } => {
                state.undecided.remove(txn);
            }
            LogRecord::Begin { .. } | LogRecord::Checkpoint { .. } => {}
        }
    }

    /// Appends an encoded frame to the in-memory buffer. Returns the
    /// record's append sequence number.
    fn buffer_record(state: &mut DiskState, record: &LogRecord) -> u64 {
        Self::note_record(state, record);
        state.buf.extend_from_slice(&codec::encode_frame(record));
        state.buf_records += 1;
        state.record_count += 1;
        state.appended += 1;
        state.appended
    }

    /// Writes the buffered frames to the active segment file. Must be
    /// called with the state lock held and power on.
    fn write_buf(state: &mut DiskState) {
        if state.buf.is_empty() {
            return;
        }
        let Power::On { file } = &mut state.power else {
            return;
        };
        file.write_all(&state.buf)
            .expect("disk engine: segment write failed; cannot guarantee durability");
        state.flushed_len += state.buf.len() as u64;
        state.buf.clear();
        state.buf_records = 0;
    }

    /// Rotates the active segment when it has outgrown the limit. Called
    /// with the lock held, power on, and no sync in flight.
    fn maybe_rotate(&self, state: &mut DiskState) {
        if state.flushed_len < self.segment_max_bytes || state.power.is_off() {
            return;
        }
        let next_seq = state.active_seq + 1;
        let file = create_segment(&self.segment_path(next_seq))
            .expect("disk engine: segment rotation failed");
        sync_dir(&self.dir);
        state.sealed_bytes += state.flushed_len;
        state.active_seq = next_seq;
        state.flushed_len = SEGMENT_HEADER_LEN as u64;
        state.power = Power::On { file };
    }

    /// Blocks until every append up to `target` is durable, becoming the
    /// group-commit leader when no sync is in flight. Returns immediately
    /// (without durability) when power is off — the caller is a doomed
    /// thread on a site that no longer exists.
    fn sync_up_to(&self, target: u64) {
        let mut state = self.state.lock();
        loop {
            if state.power.is_off() || state.synced_seq >= target {
                return;
            }
            if state.sync_in_flight {
                self.synced.wait(&mut state);
                continue;
            }
            // Leader: flush everything buffered so far and pay one fsync
            // for the whole batch.
            state.sync_in_flight = true;
            Self::write_buf(&mut state);
            let batch_end = state.appended;
            let Power::On { file } = &state.power else {
                state.sync_in_flight = false;
                self.synced.notify_all();
                return;
            };
            let fd = file
                .try_clone()
                .expect("disk engine: cloning segment fd failed");
            drop(state);

            let start = Instant::now();
            fd.sync_data()
                .expect("disk engine: fsync failed; cannot guarantee durability");
            if let Some(tracer) = &self.tracer {
                tracer.record_phase(rainbow_trace::Phase::FsyncBatch, start.elapsed());
            }

            state = self.state.lock();
            state.force_count += 1;
            if !state.power.is_off() {
                if state.synced_seq < batch_end {
                    state.synced_seq = batch_end;
                }
                state.sync_in_flight = false;
                self.maybe_rotate(&mut state);
            } else {
                state.sync_in_flight = false;
            }
            self.synced.notify_all();
        }
    }

    /// The unbatched force path: flush + sync inline under the lock, so
    /// every forced append pays its own fsync (the group-commit baseline).
    fn sync_inline(&self, state: &mut DiskState) {
        if state.power.is_off() {
            return;
        }
        Self::write_buf(state);
        let Power::On { file } = &state.power else {
            return;
        };
        let start = Instant::now();
        file.sync_data()
            .expect("disk engine: fsync failed; cannot guarantee durability");
        if let Some(tracer) = &self.tracer {
            tracer.record_phase(rainbow_trace::Phase::FsyncBatch, start.elapsed());
        }
        state.force_count += 1;
        state.synced_seq = state.appended;
        self.maybe_rotate(state);
    }
}

impl StorageEngine for DiskEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Disk
    }

    fn append(&self, record: LogRecord) {
        let mut state = self.state.lock();
        if state.power.is_off() {
            return;
        }
        Self::buffer_record(&mut state, &record);
    }

    fn append_forced(&self, record: LogRecord) {
        let mut state = self.state.lock();
        if state.power.is_off() {
            return;
        }
        let seq = Self::buffer_record(&mut state, &record);
        if self.fsync_batching {
            drop(state);
            self.sync_up_to(seq);
        } else {
            // Wait out any batching leader left over from a config change
            // is unnecessary: batching is fixed per engine. Sync inline.
            self.sync_inline(&mut state);
        }
    }

    fn append_forced_many(&self, records: Vec<LogRecord>) {
        if records.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        if state.power.is_off() {
            return;
        }
        // Buffer the whole group under one lock acquisition, then sync up
        // to the last record: the group rides a single fsync whether or
        // not another thread's force happens to lead the batch.
        let mut last_seq = 0;
        for record in &records {
            last_seq = Self::buffer_record(&mut state, record);
        }
        if self.fsync_batching {
            drop(state);
            self.sync_up_to(last_seq);
        } else {
            self.sync_inline(&mut state);
        }
    }

    fn force(&self) {
        if self.fsync_batching {
            let target = self.state.lock().appended;
            self.sync_up_to(target);
        } else {
            let mut state = self.state.lock();
            if state.synced_seq < state.appended {
                self.sync_inline(&mut state);
            }
        }
    }

    fn force_count(&self) -> u64 {
        self.state.lock().force_count
    }

    fn record_count(&self) -> usize {
        self.state.lock().record_count
    }

    fn log_bytes(&self) -> u64 {
        let state = self.state.lock();
        state.sealed_bytes + state.flushed_len + state.buf.len() as u64
    }

    fn checkpoint(&self, snapshot: Vec<(ItemId, Value, Version)>) {
        let mut state = self.state.lock();
        // Wait out any in-flight sync: compaction rewrites the file set
        // and must not race a leader syncing the old active segment.
        while state.sync_in_flight {
            self.synced.wait(&mut state);
        }
        if state.power.is_off() {
            return;
        }

        // Fresh segment: checkpoint + carried-over undecided prepares +
        // whatever was still buffered (order preserved relative to the
        // checkpoint, so replay semantics match the memory WAL's
        // compaction).
        let next_seq = state.active_seq + 1;
        let path = self.segment_path(next_seq);
        let mut bytes = Vec::with_capacity(SEGMENT_HEADER_LEN + 64 * snapshot.len());
        bytes.extend_from_slice(&segment_header());
        bytes.extend_from_slice(&codec::encode_frame(&LogRecord::Checkpoint {
            state: snapshot,
        }));
        let mut records = 1usize;
        for (txn, writes) in &state.undecided {
            bytes.extend_from_slice(&codec::encode_frame(&LogRecord::Prepare {
                txn: *txn,
                writes: writes.clone(),
            }));
            records += 1;
        }
        bytes.extend_from_slice(&state.buf);
        records += state.buf_records;

        let file = create_segment_with(&path, &bytes)
            .expect("disk engine: checkpoint segment write failed");
        file.sync_data()
            .expect("disk engine: checkpoint fsync failed; cannot guarantee durability");
        sync_dir(&self.dir);

        // Drop every older segment: the checkpoint supersedes them.
        let old_last = state.active_seq;
        if let Ok(segments) = list_segments(&self.dir) {
            for seq in segments {
                if seq <= old_last {
                    let _ = fs::remove_file(self.segment_path(seq));
                }
            }
        }
        sync_dir(&self.dir);

        state.buf.clear();
        state.buf_records = 0;
        state.record_count = records;
        state.sealed_bytes = 0;
        state.flushed_len = bytes.len() as u64;
        state.active_seq = next_seq;
        state.synced_seq = state.appended;
        state.force_count += 1;
        state.power = Power::On { file };
        self.synced.notify_all();
    }

    fn wants_compaction(&self) -> bool {
        let state = self.state.lock();
        !state.power.is_off()
            && state.sealed_bytes + state.flushed_len + state.buf.len() as u64
                > self.compaction_threshold_bytes
    }

    fn recover(&self) -> RainbowResult<RecoveryOutcome> {
        let mut state = self.state.lock();
        while state.sync_in_flight {
            // A pre-power-loss leader may still be inside fsync on a
            // cloned fd; let it drain before rebuilding.
            self.synced.wait(&mut state);
        }
        fs::create_dir_all(&self.dir)
            .map_err(|e| RainbowError::Storage(format!("create {}: {e}", self.dir.display())))?;

        let mut segments = list_segments(&self.dir)
            .map_err(|e| RainbowError::Storage(format!("scan {}: {e}", self.dir.display())))?;
        segments.sort_unstable();

        if segments.is_empty() {
            let file = create_segment(&self.segment_path(1))
                .map_err(|e| RainbowError::Storage(format!("create segment: {e}")))?;
            file.sync_data()
                .map_err(|e| RainbowError::Storage(format!("sync segment: {e}")))?;
            sync_dir(&self.dir);
            state.power = Power::On { file };
            state.active_seq = 1;
            state.flushed_len = SEGMENT_HEADER_LEN as u64;
            state.sealed_bytes = 0;
            state.buf.clear();
            state.buf_records = 0;
            state.record_count = 0;
            state.appended = 0;
            state.synced_seq = 0;
            state.undecided.clear();
            return Ok(RecoveryOutcome::default());
        }

        let mut records: Vec<LogRecord> = Vec::new();
        let mut sealed_bytes = 0u64;
        let mut active_len = 0u64;
        let last_index = segments.len() - 1;
        for (index, &seq) in segments.iter().enumerate() {
            let path = self.segment_path(seq);
            let bytes = fs::read(&path)
                .map_err(|e| RainbowError::Storage(format!("read {}: {e}", path.display())))?;
            let is_last = index == last_index;
            let scanned = scan_segment(&path, seq, &bytes, is_last)?;
            records.extend(scanned.records);
            if is_last {
                active_len = scanned.valid_len;
            } else {
                sealed_bytes += scanned.valid_len;
            }
        }

        let outcome = replay(&records);

        // Reopen the last segment as the active one, truncating any torn
        // or corrupt tail the scan rejected.
        let active_seq = segments[last_index];
        let path = self.segment_path(active_seq);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| RainbowError::Storage(format!("open {}: {e}", path.display())))?;
        file.set_len(active_len)
            .map_err(|e| RainbowError::Storage(format!("truncate {}: {e}", path.display())))?;
        file.sync_data()
            .map_err(|e| RainbowError::Storage(format!("sync {}: {e}", path.display())))?;
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| RainbowError::Storage(format!("reopen {}: {e}", path.display())))?;
        if active_len < SEGMENT_HEADER_LEN as u64 {
            // The segment's own header was torn (power died mid-rotation):
            // rewrite it so future appends land in a well-formed file.
            file.write_all(&segment_header())
                .map_err(|e| RainbowError::Storage(format!("reheader {}: {e}", path.display())))?;
            file.sync_data()
                .map_err(|e| RainbowError::Storage(format!("sync {}: {e}", path.display())))?;
            active_len = SEGMENT_HEADER_LEN as u64;
        }

        state.undecided = outcome
            .in_doubt
            .iter()
            .map(|in_doubt| (in_doubt.txn, in_doubt.writes.clone()))
            .collect();
        state.record_count = records.len();
        state.appended = records.len() as u64;
        state.synced_seq = state.appended;
        state.buf.clear();
        state.buf_records = 0;
        state.sealed_bytes = sealed_bytes;
        state.flushed_len = active_len;
        state.active_seq = active_seq;
        state.power = Power::On { file };
        Ok(outcome)
    }

    fn power_loss(&self, fault: PowerLossFault) {
        let mut state = self.state.lock();
        if state.power.is_off() {
            return;
        }
        // Model the write that was racing the power failure: bytes the OS
        // had partially (torn) or wrongly (corrupt) persisted. They go
        // straight into the file, *after* everything already synced — a
        // torn write can only damage the record being written, never the
        // stable prefix.
        let appended = state.appended;
        if let Power::On { file } = &mut state.power {
            let doomed = codec::encode_frame(&LogRecord::Commit {
                txn: TxnId::new(SiteId(u32::MAX), appended),
                writes: vec![(
                    ItemId::new("__doomed__"),
                    Value::Int(appended as i64),
                    Version(u64::MAX),
                )],
            });
            match fault {
                PowerLossFault::Clean => {}
                PowerLossFault::TornWrite => {
                    let cut = FRAME_HEADER_LEN + (doomed.len() - FRAME_HEADER_LEN) / 2;
                    file.write_all(&doomed[..cut])
                        .expect("disk engine: fault injection write failed");
                    state.flushed_len += cut as u64;
                }
                PowerLossFault::CorruptWrite => {
                    let mut damaged = doomed;
                    let last = damaged.len() - 1;
                    damaged[last] ^= 0x20;
                    file.write_all(&damaged)
                        .expect("disk engine: fault injection write failed");
                    state.flushed_len += damaged.len() as u64;
                }
            }
        }
        state.power = Power::Off;
        state.buf.clear();
        state.buf_records = 0;
        state.undecided.clear();
        // Wake every follower stuck waiting for a sync that will never
        // come; they observe Off and bail.
        self.synced.notify_all();
    }

    fn flush_and_sync(&self) -> RainbowResult<()> {
        let mut state = self.state.lock();
        while state.sync_in_flight {
            self.synced.wait(&mut state);
        }
        if state.power.is_off() {
            return Ok(());
        }
        if state.buf.is_empty() && state.synced_seq >= state.appended {
            return Ok(());
        }
        let flush_result = (|| -> std::io::Result<()> {
            if !state.buf.is_empty() {
                let buffered = std::mem::take(&mut state.buf);
                state.buf_records = 0;
                let Power::On { file } = &mut state.power else {
                    return Ok(());
                };
                file.write_all(&buffered)?;
                state.flushed_len += buffered.len() as u64;
            }
            let Power::On { file } = &state.power else {
                return Ok(());
            };
            file.sync_data()
        })();
        flush_result.map_err(|e| RainbowError::Storage(format!("flush_and_sync: {e}")))?;
        state.synced_seq = state.appended;
        state.force_count += 1;
        Ok(())
    }
}

/// The readable contents of one segment.
struct ScannedSegment {
    records: Vec<LogRecord>,
    /// Bytes of the segment occupied by the header and valid frames; for
    /// the last segment this is where a torn tail gets truncated.
    valid_len: u64,
}

/// Decodes every frame of a segment, deciding for each failure whether it
/// is a truncatable power-loss tail or unrecoverable corruption.
fn scan_segment(
    path: &Path,
    seq: u64,
    bytes: &[u8],
    is_last: bool,
) -> RainbowResult<ScannedSegment> {
    let corrupt = |offset: usize, reason: String| RainbowError::CorruptLog {
        segment: seq,
        offset: offset as u64,
        reason,
    };

    // Header: a short last segment is a rotation torn by power loss
    // (recovery rewrites it); anything else malformed is corruption.
    if bytes.len() < SEGMENT_HEADER_LEN {
        if is_last {
            return Ok(ScannedSegment {
                records: Vec::new(),
                valid_len: 0,
            });
        }
        return Err(corrupt(
            0,
            format!("segment header torn ({} bytes)", bytes.len()),
        ));
    }
    if &bytes[0..4] != SEGMENT_MAGIC {
        return Err(corrupt(0, format!("bad magic in {}", path.display())));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != SEGMENT_FORMAT_VERSION {
        return Err(corrupt(
            4,
            format!("unsupported segment format version {version}"),
        ));
    }

    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    while offset < bytes.len() {
        match codec::decode_frame(bytes, offset) {
            Ok((record, next)) => {
                records.push(record);
                offset = next;
            }
            Err(err) => {
                if !is_last {
                    return Err(corrupt(offset, err.to_string()));
                }
                match err {
                    ref torn if torn.is_torn() => {
                        // The classic power-loss signature: truncate here.
                    }
                    // A bad-CRC *final* frame is a write that raced the
                    // power failure; a bad-CRC frame *followed by valid
                    // frames* cannot be (later writes imply this one
                    // completed long ago) and is real corruption.
                    FrameError::BadCrc { .. } if valid_frames_follow(bytes, offset) => {
                        return Err(corrupt(offset, format!("{err} (valid frames follow)")));
                    }
                    FrameError::Malformed(_) => {
                        // The checksum matched, so no torn or flipped write
                        // produced this: it is a format-level fault.
                        return Err(corrupt(offset, err.to_string()));
                    }
                    _ => {}
                }
                break;
            }
        }
    }
    Ok(ScannedSegment {
        records,
        valid_len: offset as u64,
    })
}

/// True when any byte position after the frame at `offset` starts a chain
/// of valid frames running exactly to the end of the buffer — evidence
/// that the damage at `offset` sits in the *middle* of the log.
fn valid_frames_follow(bytes: &[u8], offset: usize) -> bool {
    // First try the damaged frame's own length field (damage may be
    // confined to the payload), then every later byte position in case
    // the length field itself is garbage. Segments are scanned only on
    // recovery from damage, so the quadratic fallback is acceptable.
    let mut candidates = Vec::new();
    if bytes.len() - offset >= FRAME_HEADER_LEN {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        if let Some(skip) = offset.checked_add(FRAME_HEADER_LEN + len) {
            if skip < bytes.len() {
                candidates.push(skip);
            }
        }
    }
    candidates.extend(offset + 1..bytes.len().saturating_sub(FRAME_HEADER_LEN));
    candidates.into_iter().any(|start| {
        let mut cursor = start;
        let mut decoded = 0usize;
        while cursor < bytes.len() {
            match codec::decode_frame(bytes, cursor) {
                Ok((_, next)) => {
                    decoded += 1;
                    cursor = next;
                }
                Err(_) => return false,
            }
        }
        decoded >= 1 && cursor == bytes.len()
    })
}

fn list_segments(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut segments = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segments),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_suffix(".seg") {
            if let Ok(seq) = stem.parse::<u64>() {
                segments.push(seq);
            }
        }
    }
    Ok(segments)
}

fn create_segment(path: &Path) -> std::io::Result<File> {
    create_segment_with(path, &segment_header())
}

fn create_segment_with(path: &Path, bytes: &[u8]) -> std::io::Result<File> {
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    file.write_all(bytes)?;
    Ok(file)
}

/// Best-effort directory sync so freshly created segment files survive a
/// real power loss (ignored on platforms that refuse to sync directories).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StorageConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir() -> PathBuf {
        let seq = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("rainbow-disk-test-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    fn commit_record(seq: u64, value: i64) -> LogRecord {
        LogRecord::Commit {
            txn: txn(seq),
            writes: vec![(item("x"), Value::Int(value), Version(seq))],
        }
    }

    fn open_engine(dir: &Path, config: &StorageConfig) -> DiskEngine {
        let engine = DiskEngine::new(dir, config, None);
        engine.recover().unwrap();
        engine
    }

    #[test]
    fn commits_survive_power_loss_and_reopen() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = open_engine(&dir, &config);
        for i in 1..=5 {
            engine.append_forced(commit_record(i, i as i64 * 10));
        }
        engine.append(LogRecord::Begin { txn: txn(6) }); // unforced: may be lost
        engine.power_loss(PowerLossFault::Clean);
        assert_eq!(engine.record_count(), 6, "counters freeze at power loss");

        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 5, "the unforced Begin is gone");
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(50));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = open_engine(&dir, &config);
        engine.append_forced(commit_record(1, 7));
        engine.power_loss(PowerLossFault::TornWrite);

        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 1);
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(7));

        // Recovery truncated the torn bytes: a further cycle is clean.
        engine.append_forced(commit_record(2, 8));
        engine.power_loss(PowerLossFault::Clean);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 2);
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(8));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_is_truncated_on_recovery() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = open_engine(&dir, &config);
        engine.append_forced(commit_record(1, 7));
        engine.power_loss(PowerLossFault::CorruptWrite);

        let outcome = engine.recover().unwrap();
        assert_eq!(
            outcome.replayed_records, 1,
            "the flipped-byte tail record must be dropped, not decoded"
        );
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(7));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = open_engine(&dir, &config);
        engine.append_forced(commit_record(1, 1));
        engine.append_forced(commit_record(2, 2));
        engine.append_forced(commit_record(3, 3));
        engine.power_loss(PowerLossFault::Clean);

        // Flip one byte in the middle of the segment: inside the second
        // frame's payload, with valid frames after it.
        let path = dir.join("000001.seg");
        let mut bytes = fs::read(&path).unwrap();
        let frame_len = codec::encode_frame(&commit_record(1, 1)).len();
        let target = SEGMENT_HEADER_LEN + frame_len + FRAME_HEADER_LEN + 2;
        bytes[target] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let err = engine.recover().unwrap_err();
        assert!(
            matches!(err, RainbowError::CorruptLog { segment: 1, .. }),
            "expected CorruptLog, got {err:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_a_sealed_segment_is_a_typed_error() {
        let dir = test_dir();
        // Tiny segments force rotation quickly.
        let config = StorageConfig::disk(&dir).with_segment_max_bytes(64);
        let engine = open_engine(&dir, &config);
        for i in 1..=6 {
            engine.append_forced(commit_record(i, i as i64));
        }
        assert!(engine.segment_count() > 1, "rotation must have happened");
        engine.power_loss(PowerLossFault::Clean);

        // Damage the tail of the FIRST (sealed) segment: even tail damage
        // is unrecoverable there, because later segments exist.
        let path = dir.join("000001.seg");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let err = engine.recover().unwrap_err();
        assert!(matches!(err, RainbowError::CorruptLog { segment: 1, .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_the_log_across_segments_and_replays_in_order() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir).with_segment_max_bytes(64);
        let engine = open_engine(&dir, &config);
        for i in 1..=20 {
            engine.append_forced(commit_record(i, i as i64));
        }
        assert!(engine.segment_count() >= 3);
        engine.power_loss(PowerLossFault::Clean);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 20);
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(20));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_old_segments_and_keeps_undecided_prepares() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir).with_segment_max_bytes(64);
        let engine = open_engine(&dir, &config);
        for i in 1..=10 {
            engine.append_forced(commit_record(i, i as i64));
        }
        // One undecided prepare that must survive compaction.
        engine.append_forced(LogRecord::Prepare {
            txn: txn(99),
            writes: vec![(item("y"), Value::Int(99), Version(1))],
        });
        let segments_before = engine.segment_count();
        assert!(segments_before > 1);
        let bytes_before = engine.log_bytes();

        engine.checkpoint(vec![(item("x"), Value::Int(10), Version(10))]);
        assert_eq!(engine.segment_count(), 1, "compaction drops old segments");
        assert!(engine.log_bytes() < bytes_before);

        engine.power_loss(PowerLossFault::Clean);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.in_doubt.len(), 1);
        assert_eq!(outcome.in_doubt[0].txn, txn(99));
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(10));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wants_compaction_after_threshold() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir).with_compaction_threshold(128);
        let engine = open_engine(&dir, &config);
        assert!(!engine.wants_compaction());
        for i in 1..=10 {
            engine.append_forced(commit_record(i, i as i64));
        }
        assert!(engine.wants_compaction());
        engine.checkpoint(vec![(item("x"), Value::Int(10), Version(10))]);
        assert!(!engine.wants_compaction());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_concurrent_forces() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = Arc::new(open_engine(&dir, &config));
        let threads = 8;
        let commits_per_thread = 25;
        std::thread::scope(|scope| {
            for thread in 0..threads {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    for i in 0..commits_per_thread {
                        let seq = (thread * commits_per_thread + i + 1) as u64;
                        engine.append_forced(commit_record(seq, seq as i64));
                    }
                });
            }
        });
        let total = (threads * commits_per_thread) as u64;
        assert!(
            engine.force_count() <= total,
            "group commit must never fsync more than once per forced append"
        );
        engine.power_loss(PowerLossFault::Clean);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, total as usize);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_forced_many_pays_one_fsync_for_the_group() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = open_engine(&dir, &config);
        let records: Vec<LogRecord> = (1..=5).map(|i| commit_record(i, i as i64)).collect();
        engine.append_forced_many(records);
        assert_eq!(engine.force_count(), 1, "the whole group rides one fsync");
        engine.power_loss(PowerLossFault::Clean);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 5);
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(5));

        // Power off: the group is dropped like any other append.
        engine.power_loss(PowerLossFault::Clean);
        engine.append_forced_many(vec![commit_record(6, 6)]);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbatched_engine_pays_one_fsync_per_force() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir).without_fsync_batching();
        let engine = open_engine(&dir, &config);
        for i in 1..=10 {
            engine.append_forced(commit_record(i, i as i64));
        }
        assert_eq!(engine.force_count(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_while_off_are_dropped() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = open_engine(&dir, &config);
        engine.append_forced(commit_record(1, 1));
        engine.power_loss(PowerLossFault::Clean);
        engine.append_forced(commit_record(2, 2));
        engine.append(LogRecord::Begin { txn: txn(3) });
        engine.force();
        assert!(engine.flush_and_sync().is_ok());
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_and_sync_makes_buffered_records_durable() {
        let dir = test_dir();
        let config = StorageConfig::disk(&dir);
        let engine = open_engine(&dir, &config);
        engine.append(commit_record(1, 5)); // unforced: buffered only
        engine.flush_and_sync().unwrap();
        engine.power_loss(PowerLossFault::Clean);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 1);
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(5));
        let _ = fs::remove_dir_all(&dir);
    }
}
