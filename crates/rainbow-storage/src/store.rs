//! The volatile, versioned item store of one Rainbow site, and the
//! [`SiteStorage`] facade that pairs it with the write-ahead log.

use crate::engine::{EngineKind, MemoryEngine, PowerLossFault, StorageConfig, StorageEngine};
use crate::recovery::RecoveryOutcome;
use crate::wal::LogRecord;
use parking_lot::{Mutex, RwLock};
use rainbow_common::{
    FxHashMap, ItemId, RainbowError, RainbowResult, SiteId, TxnId, Value, Version,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The committed state of one copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CopyState {
    /// Latest committed value.
    pub value: Value,
    /// Latest committed version number (quorum consensus reads pick the
    /// highest version in a read quorum).
    pub version: Version,
}

impl CopyState {
    /// A fresh copy with the given initial value at version 0.
    pub fn initial(value: Value) -> Self {
        CopyState {
            value,
            version: Version::INITIAL,
        }
    }
}

/// The volatile in-memory store: committed copies plus per-transaction
/// staged (pre-written) updates. Everything here is lost on a crash.
///
/// Copies are indexed by hash map — with interned [`ItemId`]s a lookup
/// hashes one precomputed `u64` instead of walking a `BTreeMap` of string
/// comparisons. [`VersionedStore::snapshot`] sorts by item name, so
/// externally observable orderings are unchanged.
#[derive(Debug, Default)]
pub struct VersionedStore {
    copies: FxHashMap<ItemId, CopyState>,
    staged: FxHashMap<TxnId, FxHashMap<ItemId, (Value, Version)>>,
}

impl VersionedStore {
    /// An empty store.
    pub fn new() -> Self {
        VersionedStore::default()
    }

    /// Creates (or resets) an item with an initial value.
    pub fn create(&mut self, item: ItemId, initial: Value) {
        self.copies.insert(item, CopyState::initial(initial));
    }

    /// Reads the committed value and version of an item.
    pub fn read(&self, item: &ItemId) -> RainbowResult<(Value, Version)> {
        self.copies
            .get(item)
            .map(|c| (c.value.clone(), c.version))
            .ok_or_else(|| RainbowError::UnknownItem(item.clone()))
    }

    /// The committed version of an item (the pre-write path of quorum
    /// consensus asks copies for their version numbers).
    pub fn version(&self, item: &ItemId) -> RainbowResult<Version> {
        self.copies
            .get(item)
            .map(|c| c.version)
            .ok_or_else(|| RainbowError::UnknownItem(item.clone()))
    }

    /// Whether the item exists at this site.
    pub fn contains(&self, item: &ItemId) -> bool {
        self.copies.contains_key(item)
    }

    /// Stages a write on behalf of a transaction. Staged writes become
    /// visible only when [`VersionedStore::install`] is called.
    pub fn stage(&mut self, txn: TxnId, item: ItemId, value: Value, version: Version) {
        self.staged
            .entry(txn)
            .or_default()
            .insert(item, (value, version));
    }

    /// The writes currently staged by a transaction, sorted by item name
    /// (the staging index is a hash map; sorting keeps log records and
    /// prepare messages deterministic).
    pub fn staged_writes(&self, txn: &TxnId) -> Vec<(ItemId, Value, Version)> {
        self.staged
            .get(txn)
            .map(|writes| {
                let mut out: Vec<(ItemId, Value, Version)> = writes
                    .iter()
                    .map(|(item, (value, version))| (item.clone(), value.clone(), *version))
                    .collect();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                out
            })
            .unwrap_or_default()
    }

    /// Installs one committed write under the Thomas write rule: a copy
    /// never regresses to an older version. Timestamp-ordering stacks can
    /// commit two writers of the same item in version order but deliver
    /// their decisions in the opposite order; without the guard the later
    /// decision would overwrite the younger value with the older one.
    fn install_copy(&mut self, item: &ItemId, value: &Value, version: Version) {
        match self.copies.get(item) {
            Some(current) if current.version > version => {}
            _ => {
                self.copies.insert(
                    item.clone(),
                    CopyState {
                        value: value.clone(),
                        version,
                    },
                );
            }
        }
    }

    /// Installs the staged writes of a transaction into the committed state
    /// and clears its staging area. Returns the transaction's writes (sorted
    /// by item name, matching [`VersionedStore::staged_writes`]) — including
    /// any skipped by the Thomas-write-rule guard, since the transaction
    /// still logically wrote them.
    pub fn install(&mut self, txn: &TxnId) -> Vec<(ItemId, Value, Version)> {
        let writes = self.staged.remove(txn).unwrap_or_default();
        let mut installed = Vec::with_capacity(writes.len());
        for (item, (value, version)) in writes {
            self.install_copy(&item, &value, version);
            installed.push((item, value, version));
        }
        installed.sort_by(|a, b| a.0.cmp(&b.0));
        installed
    }

    /// Installs externally supplied writes (used by recovery when replaying
    /// commit records, and by in-doubt resolution), under the same
    /// no-regression guard as [`VersionedStore::install`].
    pub fn install_writes(&mut self, writes: &[(ItemId, Value, Version)]) {
        for (item, value, version) in writes {
            self.install_copy(item, value, *version);
        }
    }

    /// Discards the staged writes of a transaction.
    pub fn discard(&mut self, txn: &TxnId) {
        self.staged.remove(txn);
    }

    /// Installs a committed copy fetched from a peer during recovery
    /// catch-up (the Available Copies "copier" step), but only when it is
    /// newer than the local copy. Returns whether anything changed.
    pub fn repair(&mut self, item: ItemId, value: Value, version: Version) -> bool {
        match self.copies.get(&item) {
            Some(current) if current.version >= version => false,
            _ => {
                self.copies.insert(item, CopyState { value, version });
                true
            }
        }
    }

    /// Transactions that currently have staged writes (sorted).
    pub fn staging_txns(&self) -> Vec<TxnId> {
        let mut txns: Vec<TxnId> = self.staged.keys().copied().collect();
        txns.sort_unstable();
        txns
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// True when no item is stored.
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }

    /// A snapshot of every committed copy, sorted by item name; used for
    /// checkpoints and replica convergence checks.
    pub fn snapshot(&self) -> Vec<(ItemId, Value, Version)> {
        let mut snapshot: Vec<(ItemId, Value, Version)> = self
            .copies
            .iter()
            .map(|(item, state)| (item.clone(), state.value.clone(), state.version))
            .collect();
        snapshot.sort_by(|a, b| a.0.cmp(&b.0));
        snapshot
    }

    /// Clears everything (simulating the loss of volatile memory).
    pub fn clear(&mut self) {
        self.copies.clear();
        self.staged.clear();
    }

    /// Replaces the committed state wholesale (used by recovery).
    pub fn load(&mut self, state: BTreeMap<ItemId, CopyState>) {
        self.copies = state.into_iter().collect();
        self.staged.clear();
    }
}

/// The background checkpoint-compaction worker of one disk-backed site.
///
/// Commits used to run compaction inline when the log outgrew its
/// threshold, stalling whichever transaction happened to trip it — and,
/// on the reactor coordinator, stalling a whole reactor tick. The worker
/// moves that work onto its own thread: the commit path merely *nudges*
/// it, and it checkpoints off to the side while commits keep appending.
#[derive(Debug)]
struct Compactor {
    nudge: SyncSender<()>,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Compactor {
    /// Spawns the worker. It wakes on a nudge (or every 100ms as a
    /// safety net) and checkpoints whenever the engine asks for it.
    fn spawn(
        site: SiteId,
        store: Arc<RwLock<VersionedStore>>,
        engine: Arc<dyn StorageEngine>,
    ) -> Self {
        let (nudge, wakeups) = sync_channel::<()>(1);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("rainbow-compact-{}", site.0))
            .spawn(move || loop {
                let _ = wakeups.recv_timeout(Duration::from_millis(100));
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                if engine.wants_compaction() {
                    let snapshot = store.read().snapshot();
                    engine.checkpoint(snapshot);
                }
            })
            .expect("spawn compaction thread");
        Compactor {
            nudge,
            stop,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Stops and joins the worker (idempotent).
    fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.nudge.try_send(());
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

/// The durable + volatile storage of one Rainbow site.
///
/// `SiteStorage` is cheaply cloneable (it is an `Arc` internally) so that
/// the concurrency-control layer, the commit participant and the site
/// runtime can all hold handles to the same storage.
///
/// The durable half is a pluggable [`StorageEngine`]: the in-memory
/// simulated WAL by default ([`SiteStorage::new`]), or the on-disk
/// log-structured engine when opened from a [`StorageConfig`] that selects
/// it ([`SiteStorage::open`]).
#[derive(Debug, Clone)]
pub struct SiteStorage {
    site: SiteId,
    store: Arc<RwLock<VersionedStore>>,
    engine: Arc<dyn StorageEngine>,
    tracer: Option<Arc<rainbow_trace::Tracer>>,
    compactor: Option<Arc<Compactor>>,
}

impl SiteStorage {
    /// Creates empty storage for `site` on the in-memory engine.
    pub fn new(site: SiteId) -> Self {
        SiteStorage {
            site,
            store: Arc::new(RwLock::new(VersionedStore::new())),
            engine: Arc::new(MemoryEngine::new()),
            tracer: None,
            compactor: None,
        }
    }

    /// Opens storage for `site` per `config` and recovers whatever the
    /// engine's durable log already holds: a disk engine reopening an
    /// existing data directory comes back with its committed state and
    /// in-doubt transactions; a fresh directory (or the memory engine)
    /// recovers to empty. Returns the storage plus the recovery outcome so
    /// the commit layer can chase the restored in-doubt transactions.
    pub fn open(
        site: SiteId,
        config: &StorageConfig,
        tracer: Option<Arc<rainbow_trace::Tracer>>,
    ) -> RainbowResult<(Self, RecoveryOutcome)> {
        config.validate()?;
        let engine: Arc<dyn StorageEngine> = match config.engine {
            EngineKind::Memory => Arc::new(MemoryEngine::new()),
            EngineKind::Disk => {
                let root = config.data_dir.as_ref().expect("validated above");
                let dir = root.join(format!("site-{}", site.0));
                Arc::new(crate::disk::DiskEngine::new(dir, config, tracer.clone()))
            }
        };
        let outcome = engine.recover()?;
        let store = Arc::new(RwLock::new(VersionedStore::new()));
        // Only disk engines ever want compaction; the memory engine keeps
        // its zero-thread footprint.
        let compactor = (config.engine == EngineKind::Disk).then(|| {
            Arc::new(Compactor::spawn(
                site,
                Arc::clone(&store),
                Arc::clone(&engine),
            ))
        });
        let storage = SiteStorage {
            site,
            store,
            engine,
            tracer,
            compactor,
        };
        storage.store.write().load(outcome.state.clone());
        Ok((storage, outcome))
    }

    /// Attaches a tracer: every forced log append (the fsync stand-in) is
    /// timed into the wal-force phase histogram, and sampled transactions
    /// get a `wal:force` span on this site's track.
    pub fn with_tracer(mut self, tracer: Option<Arc<rainbow_trace::Tracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Times a forced append into the tracer (no-op without one). The
    /// detail is a closure so untraced commits never pay for formatting.
    fn trace_force(&self, txn: TxnId, label: &str, start_us: u64, detail: impl FnOnce() -> String) {
        let Some(tracer) = self.tracer.as_ref() else {
            return;
        };
        let end = tracer.now_us();
        tracer.record_phase(
            rainbow_trace::Phase::WalForce,
            std::time::Duration::from_micros(end.saturating_sub(start_us)),
        );
        if tracer.sampled(txn) {
            tracer.record(rainbow_trace::TraceEvent {
                txn,
                track: rainbow_trace::Track::Site { site: self.site.0 },
                label: label.to_string(),
                start_us,
                dur_us: end.saturating_sub(start_us),
                detail: detail(),
            });
        }
    }

    /// The site this storage belongs to.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Which engine kind this storage runs on.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// Number of records in the engine's log (durable or not).
    pub fn record_count(&self) -> usize {
        self.engine.record_count()
    }

    /// Number of force (sync) operations the engine performed. With
    /// group-commit batching this counts batches, not forced appends.
    pub fn force_count(&self) -> u64 {
        self.engine.force_count()
    }

    /// Creates the given items with their initial values — but only the
    /// ones the store does not already hold, so re-initializing after a
    /// restart from disk never clobbers recovered state — and writes a
    /// checkpoint so the schema survives a crash.
    pub fn initialize(&self, items: &[(ItemId, Value)]) {
        {
            let mut store = self.store.write();
            for (item, value) in items {
                if !store.contains(item) {
                    store.create(item.clone(), value.clone());
                }
            }
        }
        self.checkpoint();
    }

    /// Reads the committed value and version of an item.
    pub fn read(&self, item: &ItemId) -> RainbowResult<(Value, Version)> {
        self.store.read().read(item)
    }

    /// The committed version of an item.
    pub fn version(&self, item: &ItemId) -> RainbowResult<Version> {
        self.store.read().version(item)
    }

    /// Whether the item exists at this site.
    pub fn contains(&self, item: &ItemId) -> bool {
        self.store.read().contains(item)
    }

    /// Stages a write for a transaction (the quorum-consensus pre-write).
    pub fn stage_write(&self, txn: TxnId, item: ItemId, value: Value, version: Version) {
        self.store.write().stage(txn, item, value, version);
    }

    /// The writes staged by a transaction.
    pub fn staged_writes(&self, txn: &TxnId) -> Vec<(ItemId, Value, Version)> {
        self.store.read().staged_writes(txn)
    }

    /// Records that a transaction has begun at this site.
    pub fn log_begin(&self, txn: TxnId) {
        self.engine.append(LogRecord::Begin { txn });
    }

    /// Durably prepares a transaction: its staged writes are forced to the
    /// log so that a crash after voting YES cannot lose them. Returns the
    /// prepared writes.
    pub fn prepare(&self, txn: TxnId) -> Vec<(ItemId, Value, Version)> {
        let writes = self.staged_writes(&txn);
        let start_us = self.tracer.as_ref().map_or(0, |t| t.now_us());
        self.engine.append_forced(LogRecord::Prepare {
            txn,
            writes: writes.clone(),
        });
        self.trace_force(txn, "wal:force", start_us, || format!("prepare {txn}"));
        writes
    }

    /// Commits a transaction: staged writes are installed into the store and
    /// a commit record is forced. Returns the installed writes.
    pub fn commit(&self, txn: TxnId) -> Vec<(ItemId, Value, Version)> {
        let installed = self.store.write().install(&txn);
        let start_us = self.tracer.as_ref().map_or(0, |t| t.now_us());
        self.engine.append_forced(LogRecord::Commit {
            txn,
            writes: installed.clone(),
        });
        self.trace_force(txn, "wal:force", start_us, || format!("commit {txn}"));
        self.maybe_compact();
        installed
    }

    /// Durably prepares a whole batch of transactions with one forced
    /// append group: every transaction's staged writes go into the log,
    /// then the engine pays a single force for the lot. Returns each
    /// transaction's prepared writes, in input order.
    pub fn prepare_many(&self, txns: &[TxnId]) -> Vec<Vec<(ItemId, Value, Version)>> {
        let prepared: Vec<Vec<(ItemId, Value, Version)>> =
            txns.iter().map(|txn| self.staged_writes(txn)).collect();
        let start_us = self.tracer.as_ref().map_or(0, |t| t.now_us());
        let records = txns
            .iter()
            .zip(&prepared)
            .map(|(txn, writes)| LogRecord::Prepare {
                txn: *txn,
                writes: writes.clone(),
            })
            .collect();
        self.engine.append_forced_many(records);
        let group = txns.len();
        for txn in txns {
            self.trace_force(*txn, "wal:force", start_us, || {
                format!("prepare {txn} (group of {group})")
            });
        }
        prepared
    }

    /// Commits a whole batch of transactions with one forced append
    /// group: every transaction's staged writes are installed, then all
    /// commit records ride a single force. Returns each transaction's
    /// installed writes, in input order.
    pub fn commit_many(&self, txns: &[TxnId]) -> Vec<Vec<(ItemId, Value, Version)>> {
        let installed: Vec<Vec<(ItemId, Value, Version)>> = {
            let mut store = self.store.write();
            txns.iter().map(|txn| store.install(txn)).collect()
        };
        let start_us = self.tracer.as_ref().map_or(0, |t| t.now_us());
        let records = txns
            .iter()
            .zip(&installed)
            .map(|(txn, writes)| LogRecord::Commit {
                txn: *txn,
                writes: writes.clone(),
            })
            .collect();
        self.engine.append_forced_many(records);
        let group = txns.len();
        for txn in txns {
            self.trace_force(*txn, "wal:force", start_us, || {
                format!("commit {txn} (group of {group})")
            });
        }
        self.maybe_compact();
        installed
    }

    /// Compacts the log if the engine asks for it — on the background
    /// worker when one exists (disk engines), inline otherwise. The
    /// commit path must never stall on a checkpoint rewrite.
    fn maybe_compact(&self) {
        if !self.engine.wants_compaction() {
            return;
        }
        match &self.compactor {
            // A full nudge channel means the worker already has a wakeup
            // pending; dropping this one is fine.
            Some(compactor) => {
                let _ = compactor.nudge.try_send(());
            }
            None => self.checkpoint(),
        }
    }

    /// Stops and joins the background compaction worker, if any. Called
    /// on site shutdown before the data directory may be removed; safe to
    /// call more than once.
    pub fn shutdown_compactor(&self) {
        if let Some(compactor) = &self.compactor {
            compactor.stop();
        }
    }

    /// Commits a transaction using an explicit write set (recovery path for
    /// in-doubt transactions whose staged writes only exist in the log).
    pub fn commit_writes(&self, txn: TxnId, writes: Vec<(ItemId, Value, Version)>) {
        self.store.write().install_writes(&writes);
        self.engine.append_forced(LogRecord::Commit { txn, writes });
    }

    /// Aborts a transaction: staged writes are discarded and an abort record
    /// appended (not forced — aborts may be lost on crash and presumed).
    pub fn abort(&self, txn: TxnId) {
        self.store.write().discard(&txn);
        self.engine.append(LogRecord::Abort { txn });
    }

    /// Installs committed copies fetched from live peers during recovery
    /// catch-up, keeping only those newer than the local copy, and (when
    /// anything changed) checkpoints so the repair survives a further crash.
    /// Returns the number of copies repaired.
    pub fn repair_copies(&self, copies: &[(ItemId, Value, Version)]) -> usize {
        let repaired = {
            let mut store = self.store.write();
            copies
                .iter()
                .filter(|(item, value, version)| {
                    store.repair(item.clone(), value.clone(), *version)
                })
                .count()
        };
        if repaired > 0 {
            self.checkpoint();
        }
        repaired
    }

    /// Writes a checkpoint of the committed state and compacts the log.
    pub fn checkpoint(&self) {
        let snapshot = self.store.read().snapshot();
        self.engine.checkpoint(snapshot);
    }

    /// Simulates a crash: volatile state (committed copies in memory and all
    /// staged writes) is lost, and the unforced log tail disappears.
    pub fn crash(&self) {
        self.power_loss(PowerLossFault::Clean);
    }

    /// Pulls the plug on this site's storage: every piece of volatile state
    /// (committed copies in memory, staged writes, engine buffers) is lost
    /// and only the synced log survives. `fault` optionally injects a torn
    /// or bit-flipped tail into the durable log, exactly as a real power
    /// loss could. Follow with [`SiteStorage::recover`].
    pub fn power_loss(&self, fault: PowerLossFault) {
        self.store.write().clear();
        self.engine.power_loss(fault);
    }

    /// Recovers from the durable log: rebuilds the committed state and
    /// returns the in-doubt transactions the commit layer must resolve.
    /// Mid-log damage the engine cannot safely replay past surfaces as
    /// [`RainbowError::CorruptLog`].
    pub fn recover(&self) -> RainbowResult<RecoveryOutcome> {
        let outcome = self.engine.recover()?;
        self.store.write().load(outcome.state.clone());
        Ok(outcome)
    }

    /// Flushes and syncs everything the engine has buffered (the clean
    /// shutdown path: a stopped cluster must not owe any acked commit to
    /// a buffer).
    pub fn flush_and_sync(&self) -> RainbowResult<()> {
        self.engine.flush_and_sync()
    }

    /// A snapshot of the committed state (used by replica-convergence tests
    /// and the progress monitor's database view).
    pub fn snapshot(&self) -> Vec<(ItemId, Value, Version)> {
        self.store.read().snapshot()
    }

    /// Number of items stored at this site.
    pub fn len(&self) -> usize {
        self.store.read().len()
    }

    /// True when this site stores no items.
    pub fn is_empty(&self) -> bool {
        self.store.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    #[test]
    fn create_read_and_version() {
        let mut store = VersionedStore::new();
        store.create(item("x"), Value::Int(5));
        assert!(store.contains(&item("x")));
        assert!(!store.contains(&item("y")));
        assert_eq!(store.read(&item("x")).unwrap(), (Value::Int(5), Version(0)));
        assert_eq!(store.version(&item("x")).unwrap(), Version(0));
        assert!(matches!(
            store.read(&item("y")),
            Err(RainbowError::UnknownItem(_))
        ));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn staged_writes_are_invisible_until_installed() {
        let mut store = VersionedStore::new();
        store.create(item("x"), Value::Int(0));
        store.stage(txn(1), item("x"), Value::Int(42), Version(1));
        assert_eq!(store.read(&item("x")).unwrap(), (Value::Int(0), Version(0)));
        assert_eq!(store.staged_writes(&txn(1)).len(), 1);
        assert_eq!(store.staging_txns(), vec![txn(1)]);

        let installed = store.install(&txn(1));
        assert_eq!(installed.len(), 1);
        assert_eq!(
            store.read(&item("x")).unwrap(),
            (Value::Int(42), Version(1))
        );
        assert!(store.staged_writes(&txn(1)).is_empty());
    }

    #[test]
    fn installs_never_regress_a_copy_to_an_older_version() {
        let mut store = VersionedStore::new();
        store.create(item("x"), Value::Int(0));
        // The younger write's decision arrives first...
        store.stage(txn(2), item("x"), Value::Int(20), Version(2));
        store.install(&txn(2));
        // ...then the older write's: the copy must keep the younger value.
        store.stage(txn(1), item("x"), Value::Int(10), Version(1));
        let writes = store.install(&txn(1));
        assert_eq!(writes.len(), 1, "the write is still reported");
        assert_eq!(
            store.read(&item("x")).unwrap(),
            (Value::Int(20), Version(2))
        );
        store.install_writes(&[(item("x"), Value::Int(5), Version(1))]);
        assert_eq!(
            store.read(&item("x")).unwrap(),
            (Value::Int(20), Version(2))
        );
    }

    #[test]
    fn discard_drops_staged_writes() {
        let mut store = VersionedStore::new();
        store.create(item("x"), Value::Int(0));
        store.stage(txn(1), item("x"), Value::Int(42), Version(1));
        store.discard(&txn(1));
        assert!(store.staged_writes(&txn(1)).is_empty());
        assert_eq!(store.read(&item("x")).unwrap(), (Value::Int(0), Version(0)));
        let installed = store.install(&txn(1));
        assert!(installed.is_empty());
    }

    #[test]
    fn site_storage_commit_cycle_survives_crash() {
        let storage = SiteStorage::new(SiteId(1));
        storage.initialize(&[(item("x"), Value::Int(0)), (item("y"), Value::Int(10))]);
        assert_eq!(storage.site(), SiteId(1));
        assert_eq!(storage.len(), 2);

        let t = txn(1);
        storage.log_begin(t);
        storage.stage_write(t, item("x"), Value::Int(100), Version(1));
        let prepared = storage.prepare(t);
        assert_eq!(prepared.len(), 1);
        let installed = storage.commit(t);
        assert_eq!(installed.len(), 1);
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(100), Version(1))
        );

        storage.crash();
        assert!(storage.is_empty(), "volatile state must be lost");
        let outcome = storage.recover().unwrap();
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(100), Version(1))
        );
        assert_eq!(
            storage.read(&item("y")).unwrap(),
            (Value::Int(10), Version(0))
        );
    }

    #[test]
    fn uncommitted_staged_writes_do_not_survive_crash() {
        let storage = SiteStorage::new(SiteId(0));
        storage.initialize(&[(item("x"), Value::Int(0))]);
        let t = txn(2);
        storage.stage_write(t, item("x"), Value::Int(7), Version(1));
        // No prepare, no commit: crash.
        storage.crash();
        storage.recover().unwrap();
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(0), Version(0))
        );
        assert!(storage.staged_writes(&t).is_empty());
    }

    #[test]
    fn prepared_transactions_are_in_doubt_after_crash() {
        let storage = SiteStorage::new(SiteId(0));
        storage.initialize(&[(item("x"), Value::Int(0))]);
        let t = txn(3);
        storage.log_begin(t);
        storage.stage_write(t, item("x"), Value::Int(9), Version(1));
        storage.prepare(t);
        storage.crash();
        let outcome = storage.recover().unwrap();
        assert_eq!(outcome.in_doubt.len(), 1);
        assert_eq!(outcome.in_doubt[0].txn, t);
        assert_eq!(outcome.in_doubt[0].writes.len(), 1);
        // The value is still the old one until the in-doubt txn is resolved.
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(0), Version(0))
        );

        // Resolve it as commit via the explicit-writes path.
        storage.commit_writes(t, outcome.in_doubt[0].writes.clone());
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(9), Version(1))
        );
    }

    #[test]
    fn aborted_transactions_leave_no_trace_in_state() {
        let storage = SiteStorage::new(SiteId(0));
        storage.initialize(&[(item("x"), Value::Int(1))]);
        let t = txn(4);
        storage.stage_write(t, item("x"), Value::Int(2), Version(1));
        storage.abort(t);
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(1), Version(0))
        );
        storage.crash();
        let outcome = storage.recover().unwrap();
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(1), Version(0))
        );
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let storage = SiteStorage::new(SiteId(0));
        storage.initialize(&[(item("x"), Value::Int(0))]);
        for i in 1..=10u64 {
            let t = txn(i);
            storage.stage_write(t, item("x"), Value::Int(i as i64), Version(i));
            storage.prepare(t);
            storage.commit(t);
        }
        let len_before = storage.record_count();
        storage.checkpoint();
        assert!(storage.record_count() < len_before);
        storage.crash();
        storage.recover().unwrap();
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(10), Version(10))
        );
    }

    #[test]
    fn snapshot_reflects_committed_state_only() {
        let storage = SiteStorage::new(SiteId(0));
        storage.initialize(&[(item("a"), Value::Int(1)), (item("b"), Value::Int(2))]);
        storage.stage_write(txn(1), item("a"), Value::Int(99), Version(1));
        let snap = storage.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.contains(&(item("a"), Value::Int(1), Version(0))));
        assert!(snap.contains(&(item("b"), Value::Int(2), Version(0))));
    }

    #[test]
    fn repair_installs_only_newer_copies_and_survives_crash() {
        let storage = SiteStorage::new(SiteId(0));
        storage.initialize(&[(item("x"), Value::Int(0)), (item("y"), Value::Int(1))]);
        // Simulate a committed local write at version 2.
        let t = txn(1);
        storage.stage_write(t, item("y"), Value::Int(5), Version(2));
        storage.prepare(t);
        storage.commit(t);

        let repaired = storage.repair_copies(&[
            (item("x"), Value::Int(9), Version(3)), // newer: installed
            (item("y"), Value::Int(4), Version(1)), // older: kept as-is
        ]);
        assert_eq!(repaired, 1);
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(9), Version(3))
        );
        assert_eq!(
            storage.read(&item("y")).unwrap(),
            (Value::Int(5), Version(2))
        );

        // The repair was checkpointed: it survives a crash.
        storage.crash();
        storage.recover().unwrap();
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(9), Version(3))
        );

        // A no-op repair pass reports zero.
        assert_eq!(
            storage.repair_copies(&[(item("x"), Value::Int(9), Version(3))]),
            0
        );
    }

    #[test]
    fn prepare_many_and_commit_many_pay_one_force_per_group() {
        let storage = SiteStorage::new(SiteId(0));
        storage.initialize(&[
            (item("x"), Value::Int(0)),
            (item("y"), Value::Int(0)),
            (item("z"), Value::Int(0)),
        ]);
        storage.stage_write(txn(1), item("x"), Value::Int(1), Version(1));
        storage.stage_write(txn(2), item("y"), Value::Int(2), Version(1));
        storage.stage_write(txn(3), item("z"), Value::Int(3), Version(1));

        let before = storage.force_count();
        let prepared = storage.prepare_many(&[txn(1), txn(2), txn(3)]);
        assert_eq!(storage.force_count(), before + 1, "one force per group");
        assert_eq!(prepared.len(), 3);
        assert_eq!(prepared[1], vec![(item("y"), Value::Int(2), Version(1))]);

        let before = storage.force_count();
        let installed = storage.commit_many(&[txn(1), txn(2), txn(3)]);
        assert_eq!(storage.force_count(), before + 1, "one force per group");
        assert_eq!(installed.len(), 3);
        assert_eq!(
            storage.read(&item("z")).unwrap(),
            (Value::Int(3), Version(1))
        );

        // The batch is as durable as individual forced commits.
        storage.crash();
        let outcome = storage.recover().unwrap();
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(
            storage.read(&item("x")).unwrap(),
            (Value::Int(1), Version(1))
        );
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let storage = SiteStorage::new(SiteId(0));
        let before = storage.force_count();
        assert!(storage.prepare_many(&[]).is_empty());
        assert!(storage.commit_many(&[]).is_empty());
        assert_eq!(storage.force_count(), before);
    }

    #[test]
    fn traced_storage_times_wal_forces() {
        let tracer = Arc::new(rainbow_trace::Tracer::new(
            rainbow_trace::TraceConfig::sample_all(),
        ));
        let storage = SiteStorage::new(SiteId(0)).with_tracer(Some(Arc::clone(&tracer)));
        storage.initialize(&[(item("x"), Value::Int(0))]);
        let t = txn(1);
        storage.stage_write(t, item("x"), Value::Int(1), Version(1));
        storage.prepare(t);
        storage.commit(t);
        // One forced append per prepare and per commit.
        let stats = tracer.phase_stats();
        assert_eq!(stats["wal-force"].count, 2);
        let events = tracer.txn_events(t);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.label == "wal:force"));
        assert!(events.iter().any(|e| e.detail.starts_with("prepare")));
        assert!(events.iter().any(|e| e.detail.starts_with("commit")));
    }

    #[test]
    fn clones_share_state() {
        let storage = SiteStorage::new(SiteId(0));
        let other = storage.clone();
        storage.initialize(&[(item("x"), Value::Int(3))]);
        assert_eq!(other.read(&item("x")).unwrap(), (Value::Int(3), Version(0)));
    }
}
