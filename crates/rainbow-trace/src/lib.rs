//! End-to-end transaction tracing for the Rainbow reproduction.
//!
//! The paper's whole point is *visibility* — its progress monitor and
//! output panel let students watch protocol internals happen. This crate
//! is the modern version of that idea: per-transaction span trees across
//! every layer (coordinator conversation, per-site quorum legs, CCP
//! decisions, ACP votes, WAL forces, network queue delay), constant-memory
//! per-phase latency histograms, and exporters.
//!
//! # Architecture
//!
//! * [`Tracer`] is the cluster-wide sink. Every layer holds an
//!   `Option<Arc<Tracer>>`; `None` (tracing disabled) keeps all recording
//!   branches dead, so the hot path pays a single `Option` check.
//! * Spans are flat [`TraceEvent`]s tagged with transaction id and
//!   [`Track`]; the span *tree* is reconstructed at export time from time
//!   containment, so protocol messages never carry trace context.
//! * Span sampling ([`TraceConfig::sample_one_in`]) is deterministic on
//!   the transaction id, so coordinator and participants agree without
//!   coordination; a worst-N ring always retains the slowest
//!   transactions' spans regardless of sampling.
//! * Phase latencies go into [`LogHistogram`]s — log-bucketed, mergeable
//!   and constant-memory — summarized as
//!   [`rainbow_common::LatencyStats`] per [`Phase`].
//!
//! # Export
//!
//! [`chrome_trace_json`] produces a Perfetto-loadable Chrome trace-event
//! file with balanced begin/end pairs; [`ascii_span_tree`] renders one
//! transaction's tree for terminals. See `examples/trace_txn.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod export;
mod histogram;
mod sink;

pub use event::{Meter, Phase, TraceEvent, Track};
pub use export::{
    ascii_span_tree, chrome_events, chrome_trace_json, validate_chrome_trace, ChromeArgs,
    ChromeEvent, ChromeTraceCheck,
};
pub use histogram::LogHistogram;
pub use sink::{TraceConfig, Tracer};
