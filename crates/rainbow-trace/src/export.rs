//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and an
//! ASCII span-tree renderer.
//!
//! The Chrome exporter emits explicit, balanced `B`/`E` duration events —
//! one process per transaction, one thread lane per track — plus
//! `process_name` / `thread_name` metadata so Perfetto labels everything.
//! Spans that overlap without nesting on the same track (e.g. concurrent
//! quorum legs) are split onto separate lanes, which guarantees every
//! lane's `B`/`E` sequence is properly nested.

use crate::event::TraceEvent;
use rainbow_common::TxnId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One Chrome trace-event object. The field set is uniform across event
/// kinds (`ph` = `"M"` metadata, `"B"` begin, `"E"` end) so exported
/// traces can be re-parsed with the same type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event (span) name, or `process_name` / `thread_name` for metadata.
    pub name: String,
    /// Category — the track name.
    pub cat: String,
    /// Phase: `"B"`, `"E"` or `"M"`.
    pub ph: String,
    /// Timestamp in microseconds.
    pub ts: u64,
    /// Process id (one per transaction).
    pub pid: u64,
    /// Thread id (one per track lane).
    pub tid: u64,
    /// Arguments (Perfetto shows them in the span detail pane).
    pub args: ChromeArgs,
}

/// Arguments attached to a Chrome trace event.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChromeArgs {
    /// Display name (used by `process_name` / `thread_name` metadata).
    pub name: String,
    /// Free-form span detail.
    pub detail: String,
}

/// Result of [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeTraceCheck {
    /// Number of `B` (begin) events.
    pub begins: usize,
    /// Number of `E` (end) events.
    pub ends: usize,
    /// Number of metadata events.
    pub metadata: usize,
    /// Number of distinct processes (transactions).
    pub processes: usize,
}

/// Exports spans as a Chrome trace-event JSON array, loadable in Perfetto
/// (`ui.perfetto.dev`) or `chrome://tracing`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    serde_json::to_string_pretty(&chrome_events(events)).expect("chrome trace serializes")
}

/// The typed event list behind [`chrome_trace_json`].
pub fn chrome_events(events: &[TraceEvent]) -> Vec<ChromeEvent> {
    // One process per transaction, in first-appearance order.
    let mut pids: BTreeMap<TxnId, u64> = BTreeMap::new();
    for event in events {
        let next = pids.len() as u64 + 1;
        pids.entry(event.txn).or_insert(next);
    }

    let mut out: Vec<ChromeEvent> = Vec::new();
    for (txn, pid) in &pids {
        out.push(ChromeEvent {
            name: "process_name".into(),
            cat: String::new(),
            ph: "M".into(),
            ts: 0,
            pid: *pid,
            tid: 0,
            args: ChromeArgs {
                name: format!("txn {txn}"),
                detail: String::new(),
            },
        });
    }

    // Group spans per (txn, track) and split each group into properly
    // nested lanes.
    let mut groups: BTreeMap<(u64, u64, String), Vec<&TraceEvent>> = BTreeMap::new();
    for event in events {
        let pid = pids[&event.txn];
        groups
            .entry((pid, event.track.lane_base(), event.track.name()))
            .or_default()
            .push(event);
    }

    for ((pid, base, track_name), mut spans) in groups {
        spans.sort_by(|a, b| {
            (a.start_us, b.dur_us, &a.label).cmp(&(b.start_us, a.dur_us, &b.label))
        });
        let lanes = assign_lanes(&spans);
        let lane_count = lanes.iter().copied().max().map_or(0, |m| m + 1);
        for lane in 0..lane_count {
            let tid = base * 100 + lane as u64;
            out.push(ChromeEvent {
                name: "thread_name".into(),
                cat: String::new(),
                ph: "M".into(),
                ts: 0,
                pid,
                tid,
                args: ChromeArgs {
                    name: if lane == 0 {
                        track_name.clone()
                    } else {
                        format!("{track_name} (lane {lane})")
                    },
                    detail: String::new(),
                },
            });
        }
        for lane in 0..lane_count {
            let lane_spans: Vec<&TraceEvent> = spans
                .iter()
                .zip(&lanes)
                .filter(|(_, l)| **l == lane)
                .map(|(s, _)| *s)
                .collect();
            emit_lane(
                &mut out,
                pid,
                base * 100 + lane as u64,
                &track_name,
                &lane_spans,
            );
        }
    }
    out
}

/// Greedy lane assignment: each span goes to the first lane where it is
/// either disjoint from, or fully nested in, everything already open.
fn assign_lanes(spans: &[&TraceEvent]) -> Vec<usize> {
    let mut lanes: Vec<Vec<u64>> = Vec::new(); // per-lane stack of open end times
    let mut assignment = Vec::with_capacity(spans.len());
    for span in spans {
        let mut chosen = None;
        for (i, stack) in lanes.iter_mut().enumerate() {
            while stack.last().is_some_and(|&end| end <= span.start_us) {
                stack.pop();
            }
            if stack.last().is_none_or(|&end| span.end_us() <= end) {
                stack.push(span.end_us());
                chosen = Some(i);
                break;
            }
        }
        let lane = chosen.unwrap_or_else(|| {
            lanes.push(vec![span.end_us()]);
            lanes.len() - 1
        });
        assignment.push(lane);
    }
    assignment
}

/// Emits balanced `B`/`E` pairs for one lane of disjoint-or-nested spans,
/// in timestamp order (ends before begins at equal timestamps).
fn emit_lane(out: &mut Vec<ChromeEvent>, pid: u64, tid: u64, cat: &str, spans: &[&TraceEvent]) {
    let mut open: Vec<&TraceEvent> = Vec::new();
    let make = |span: &TraceEvent, ph: &str, ts: u64| ChromeEvent {
        name: span.label.clone(),
        cat: cat.to_string(),
        ph: ph.into(),
        ts,
        pid,
        tid,
        args: ChromeArgs {
            name: String::new(),
            detail: span.detail.clone(),
        },
    };
    for span in spans {
        while open.last().is_some_and(|top| top.end_us() <= span.start_us) {
            let top = open.pop().expect("stack non-empty");
            out.push(make(top, "E", top.end_us()));
        }
        out.push(make(span, "B", span.start_us));
        open.push(span);
    }
    while let Some(top) = open.pop() {
        out.push(make(top, "E", top.end_us()));
    }
}

/// Parses an exported Chrome trace and checks that every `B` has a
/// matching `E` in proper stack order on its `(pid, tid)` lane. Returns
/// the event counts on success; a description of the first problem
/// otherwise. This is the assertion CI's bench-smoke leg runs on the
/// exported trace.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceCheck, String> {
    let events: Vec<ChromeEvent> =
        serde_json::from_str(json).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut check = ChromeTraceCheck {
        begins: 0,
        ends: 0,
        metadata: 0,
        processes: 0,
    };
    let mut pids: Vec<u64> = Vec::new();
    for event in &events {
        if !pids.contains(&event.pid) && event.ph != "M" {
            pids.push(event.pid);
        }
        match event.ph.as_str() {
            "M" => check.metadata += 1,
            "B" => {
                check.begins += 1;
                stacks
                    .entry((event.pid, event.tid))
                    .or_default()
                    .push(event.name.clone());
            }
            "E" => {
                check.ends += 1;
                let stack = stacks.entry((event.pid, event.tid)).or_default();
                match stack.pop() {
                    Some(open) if open == event.name => {}
                    Some(open) => {
                        return Err(format!(
                            "mismatched end: expected `{open}`, got `{}` on pid {} tid {}",
                            event.name, event.pid, event.tid
                        ));
                    }
                    None => {
                        return Err(format!(
                            "end without begin: `{}` on pid {} tid {}",
                            event.name, event.pid, event.tid
                        ));
                    }
                }
            }
            other => return Err(format!("unknown phase `{other}`")),
        }
    }
    for ((pid, tid), stack) in stacks {
        if !stack.is_empty() {
            return Err(format!(
                "unclosed span(s) {:?} on pid {pid} tid {tid}",
                stack
            ));
        }
    }
    check.processes = pids.len();
    Ok(check)
}

/// Renders one transaction's spans as an ASCII tree, nested by time
/// containment. Spans must belong to a single transaction (use
/// `Tracer::txn_events`).
pub fn ascii_span_tree(events: &[TraceEvent]) -> String {
    if events.is_empty() {
        return "(no spans)\n".to_string();
    }
    let mut spans: Vec<&TraceEvent> = events.iter().collect();
    spans.sort_by(|a, b| (a.start_us, b.dur_us).cmp(&(b.start_us, a.dur_us)));
    let origin = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let end = spans.iter().map(|s| s.end_us()).max().unwrap_or(origin);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "txn {} — {} total, {} span(s)",
        spans[0].txn,
        fmt_us(end - origin),
        spans.len()
    );
    let mut stack: Vec<&TraceEvent> = Vec::new();
    for span in spans {
        while stack.last().is_some_and(|top| !top.contains(span)) {
            stack.pop();
        }
        let indent = "  ".repeat(stack.len());
        let _ = writeln!(
            out,
            "{indent}+- [{}] {} @{} {}{}",
            span.track.name(),
            span.label,
            fmt_us(span.start_us - origin),
            fmt_us(span.dur_us),
            if span.detail.is_empty() {
                String::new()
            } else {
                format!("  ({})", span.detail)
            }
        );
        stack.push(span);
    }
    out
}

/// Formats microseconds compactly (`875us`, `12.34ms`, `1.20s`).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;
    use rainbow_common::SiteId;

    fn span(seq: u64, track: Track, label: &str, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            txn: TxnId::new(SiteId(0), seq),
            track,
            label: label.into(),
            start_us: start,
            dur_us: dur,
            detail: String::new(),
        }
    }

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            span(1, Track::Coordinator, "conversation", 0, 100),
            span(1, Track::Coordinator, "op:read", 10, 30),
            span(1, Track::Site { site: 1 }, "quorum-leg", 12, 20),
            span(1, Track::Site { site: 1 }, "ccp:grant", 15, 5),
            span(1, Track::Net, "queue", 11, 2),
            span(2, Track::Coordinator, "conversation", 50, 40),
        ]
    }

    #[test]
    fn chrome_trace_round_trips_and_balances() {
        let json = chrome_trace_json(&sample_trace());
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.begins, 6);
        assert_eq!(check.ends, 6);
        assert_eq!(check.processes, 2);
        assert!(check.metadata >= 2 + 4, "process + thread names");
    }

    #[test]
    fn overlapping_spans_split_onto_separate_lanes() {
        // Two spans on the same track overlap without nesting: the lane
        // splitter must not interleave their B/E pairs on one tid.
        let events = vec![
            span(1, Track::Coordinator, "a", 0, 50),
            span(1, Track::Coordinator, "b", 25, 50),
        ];
        let json = chrome_trace_json(&events);
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.begins, 2);
        assert_eq!(check.ends, 2);
        let typed = chrome_events(&events);
        let tids: std::collections::BTreeSet<u64> = typed
            .iter()
            .filter(|e| e.ph == "B")
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 2, "overlap forces a second lane");
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        let mut events = chrome_events(&sample_trace());
        events.retain(|e| e.ph != "E");
        let json = serde_json::to_string(&events).unwrap();
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn ascii_tree_nests_by_containment() {
        let events: Vec<TraceEvent> = sample_trace()
            .into_iter()
            .filter(|e| e.txn.seq == 1)
            .collect();
        let tree = ascii_span_tree(&events);
        assert!(tree.contains("txn T0.1"));
        assert!(tree.contains("+- [coordinator] conversation"));
        // ccp:grant is nested under the quorum leg, two levels deep.
        assert!(tree.contains("    +- [site-1] ccp:grant"), "{tree}");
        assert_eq!(ascii_span_tree(&[]), "(no spans)\n");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_us(875), "875us");
        assert_eq!(fmt_us(12_340), "12.34ms");
        assert_eq!(fmt_us(1_200_000), "1.20s");
    }
}
