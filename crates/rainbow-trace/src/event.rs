//! Trace event and phase vocabulary.
//!
//! A trace is a flat list of [`TraceEvent`]s, each tagged with the
//! transaction it belongs to and the *track* (coordinator thread, one
//! participant site, or the network) it ran on. Span trees are
//! reconstructed at export time from track + time containment, so the
//! protocol messages never have to carry trace context.

use rainbow_common::TxnId;
use serde::{Deserialize, Serialize};

/// Where a span ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Track {
    /// The coordinator conversation thread at the transaction's home site.
    Coordinator,
    /// A participant site's dispatcher (CCP decisions, ACP votes, WAL).
    Site {
        /// The participant site id.
        site: u32,
    },
    /// The simulated network (queue delay between send and delivery).
    Net,
}

impl Track {
    /// Human-readable track name used by the exporters.
    pub fn name(&self) -> String {
        match self {
            Track::Coordinator => "coordinator".to_string(),
            Track::Site { site } => format!("site-{site}"),
            Track::Net => "net".to_string(),
        }
    }

    /// A stable small integer for Chrome-trace `tid` assignment.
    pub fn lane_base(&self) -> u64 {
        match self {
            Track::Coordinator => 0,
            Track::Net => 1,
            Track::Site { site } => 10 + *site as u64,
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The transaction the span belongs to.
    pub txn: TxnId,
    /// The track the span ran on.
    pub track: Track,
    /// Short label, e.g. `conversation`, `op:read(x0)`, `quorum-leg`,
    /// `ccp:grant`, `acp:vote-yes`, `wal:force`.
    pub label: String,
    /// Start, in microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form detail (item names, decisions, message kinds).
    pub detail: String,
}

impl TraceEvent {
    /// End of the span (`start_us + dur_us`).
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// True when this span fully contains `other` in time.
    pub fn contains(&self, other: &TraceEvent) -> bool {
        self.start_us <= other.start_us && other.end_us() <= self.end_us()
    }
}

/// The measured protocol phases, each backed by one histogram in the
/// tracer. These are the columns of the per-phase breakdown in
/// `StatsSnapshot::phases` and `BENCH_phases.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Time a CCP access spent blocked before its lock / validation
    /// decision (2PL lock acquisition; zero for immediate grants).
    LockWait,
    /// Round-trip time of one quorum leg: copy request sent → reply
    /// received by the coordinator.
    QuorumRead,
    /// Participant-side prepare: CCP validation + staging + forced
    /// prepare log record.
    Prepare,
    /// Participant-side commit apply: installing staged writes + forced
    /// commit log record.
    CommitApply,
    /// One forced WAL append (the simulated fsync).
    WalForce,
    /// Network queue delay: message enqueue → delivery.
    QueueDelay,
    /// One real `fsync` issued by the disk engine's group-commit leader;
    /// each sample covers every forced append coalesced into that sync.
    FsyncBatch,
}

impl Phase {
    /// All phases, in breakdown-table order.
    pub const ALL: [Phase; 7] = [
        Phase::LockWait,
        Phase::QuorumRead,
        Phase::Prepare,
        Phase::CommitApply,
        Phase::WalForce,
        Phase::QueueDelay,
        Phase::FsyncBatch,
    ];

    /// The stable key used in `StatsSnapshot::phases` and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::LockWait => "lock-wait",
            Phase::QuorumRead => "quorum-read",
            Phase::Prepare => "prepare",
            Phase::CommitApply => "commit-apply",
            Phase::WalForce => "wal-force",
            Phase::QueueDelay => "queue-delay",
            Phase::FsyncBatch => "fsync-batch",
        }
    }

    /// Index into the tracer's phase histogram array.
    pub(crate) fn index(&self) -> usize {
        *self as usize
    }
}

/// Dimensionless gauges sampled by the runtime — counts, not latencies.
/// Each is backed by one histogram in the tracer, like a [`Phase`], but
/// the recorded values are raw magnitudes (queue lengths, batch sizes)
/// rather than durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Meter {
    /// Events drained from one reactor's queue in a single tick — the
    /// instantaneous backlog of the sharded coordinator.
    ReactorQueueDepth,
    /// Logical messages coalesced into the largest batch envelope of one
    /// reactor tick's outbox flush.
    ReactorBatchSize,
}

impl Meter {
    /// All meters, in breakdown-table order.
    pub const ALL: [Meter; 2] = [Meter::ReactorQueueDepth, Meter::ReactorBatchSize];

    /// The stable key used in stats snapshots and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            Meter::ReactorQueueDepth => "reactor-queue-depth",
            Meter::ReactorBatchSize => "reactor-batch-size",
        }
    }

    /// Index into the tracer's meter histogram array.
    pub(crate) fn index(&self) -> usize {
        *self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    #[test]
    fn track_names_and_lanes_are_stable() {
        assert_eq!(Track::Coordinator.name(), "coordinator");
        assert_eq!(Track::Site { site: 3 }.name(), "site-3");
        assert_eq!(Track::Net.name(), "net");
        assert_eq!(Track::Coordinator.lane_base(), 0);
        assert_eq!(Track::Net.lane_base(), 1);
        assert_eq!(Track::Site { site: 2 }.lane_base(), 12);
    }

    #[test]
    fn phase_names_cover_all_variants() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 7);
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        assert!(names.contains(&"lock-wait"));
        assert!(names.contains(&"wal-force"));
        assert!(names.contains(&"fsync-batch"));
    }

    #[test]
    fn containment_is_inclusive() {
        let txn = TxnId::new(SiteId(0), 1);
        let outer = TraceEvent {
            txn,
            track: Track::Coordinator,
            label: "outer".into(),
            start_us: 10,
            dur_us: 100,
            detail: String::new(),
        };
        let inner = TraceEvent {
            start_us: 10,
            dur_us: 100,
            label: "inner".into(),
            ..outer.clone()
        };
        assert!(outer.contains(&inner));
        assert_eq!(outer.end_us(), 110);
        let disjoint = TraceEvent {
            start_us: 200,
            ..inner.clone()
        };
        assert!(!outer.contains(&disjoint));
    }
}
