//! The trace sink: sharded span storage, per-phase histograms, sampling
//! and the worst-N slow-transaction ring.
//!
//! Every layer of the cluster holds an `Option<Arc<Tracer>>`; `None` keeps
//! the recording branches dead so a cluster with tracing disabled pays one
//! `Option` check and nothing else (the same pattern as the history sink).

use crate::event::{Meter, Phase, TraceEvent, Track};
use crate::histogram::LogHistogram;
use parking_lot::Mutex;
use rainbow_common::{LatencyStats, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of event shards; txn-keyed so concurrent coordinators rarely
/// contend on the same lock.
const SHARDS: usize = 16;

/// Tracing configuration, part of `ClusterConfig`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch. When false no tracer is created at all and every
    /// recording branch in the hot path is dead.
    pub enabled: bool,
    /// Span sampling: participant-side and network span events are kept
    /// for transactions whose sequence number is divisible by this.
    /// `1` keeps every transaction, `0` keeps none (phase histograms
    /// only). Sampling is deterministic on the transaction id, so the
    /// coordinator and every participant agree without carrying trace
    /// context in messages.
    pub sample_one_in: u32,
    /// The worst-N ring: the N slowest transactions' coordinator span
    /// trees are always retained, sampled or not, so outliers are never
    /// lost to sampling.
    pub slowest_capacity: usize,
    /// Upper bound on retained span events; beyond it new events are
    /// counted as dropped instead of stored (constant memory).
    pub max_events: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            sample_one_in: 1,
            slowest_capacity: 8,
            max_events: 200_000,
        }
    }
}

impl TraceConfig {
    /// Tracing off (the default; zero hot-path cost).
    pub fn disabled() -> Self {
        TraceConfig::default()
    }

    /// Tracing on, every transaction's spans retained.
    pub fn sample_all() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing on, but only the phase histograms and the worst-N ring are
    /// populated — no per-transaction span retention. The cheap setting
    /// sweeps and long-running clusters use.
    pub fn histograms_only() -> Self {
        TraceConfig {
            enabled: true,
            sample_one_in: 0,
            ..TraceConfig::default()
        }
    }

    /// Sets the span sampling rate (see [`TraceConfig::sample_one_in`]).
    pub fn with_sample_one_in(mut self, one_in: u32) -> Self {
        self.sample_one_in = one_in;
        self
    }

    /// Sets the worst-N ring capacity.
    pub fn with_slowest_capacity(mut self, n: usize) -> Self {
        self.slowest_capacity = n;
        self
    }
}

/// Worst-N ring: the ids and total durations of the slowest transactions
/// seen so far.
#[derive(Debug, Default)]
struct SlowestRing {
    capacity: usize,
    entries: Vec<(u64, TxnId)>, // (total duration µs, txn)
}

impl SlowestRing {
    /// Offers a finished transaction; returns true when it enters the ring
    /// (and therefore deserves span retention).
    fn offer(&mut self, txn: TxnId, dur_us: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((dur_us, txn));
            return true;
        }
        let (min_index, &(min_dur, _)) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (d, _))| *d)
            .expect("ring not empty");
        if dur_us > min_dur {
            self.entries[min_index] = (dur_us, txn);
            true
        } else {
            false
        }
    }
}

/// The cluster-wide trace sink.
///
/// One `Tracer` is created per cluster when `TraceConfig::enabled` is set
/// and handed (as `Option<Arc<Tracer>>`) to the coordinator, every site,
/// the storage layer and the network simulator. All methods take `&self`
/// and are thread-safe.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    epoch: Instant,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
    retained: AtomicUsize,
    dropped: AtomicU64,
    phases: Vec<Mutex<LogHistogram>>,
    meters: Vec<Mutex<LogHistogram>>,
    slowest: Mutex<SlowestRing>,
}

impl Tracer {
    /// A tracer with the given configuration. The epoch (timestamp zero of
    /// every span) is the moment of creation.
    pub fn new(config: TraceConfig) -> Self {
        let slowest = SlowestRing {
            capacity: config.slowest_capacity,
            entries: Vec::new(),
        };
        Tracer {
            config,
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            retained: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            phases: Phase::ALL
                .iter()
                .map(|_| Mutex::new(LogHistogram::new()))
                .collect(),
            meters: Meter::ALL
                .iter()
                .map(|_| Mutex::new(LogHistogram::new()))
                .collect(),
            slowest: Mutex::new(slowest),
        }
    }

    /// The configuration this tracer was created with.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Microseconds since the tracer's epoch; the time base of every span.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Deterministic span sampling decision for a transaction. The same
    /// formula runs at the coordinator and at every participant, so they
    /// agree without message changes.
    pub fn sampled(&self, txn: TxnId) -> bool {
        match self.config.sample_one_in {
            0 => false,
            1 => true,
            n => txn.seq.is_multiple_of(n as u64),
        }
    }

    fn shard(&self, txn: TxnId) -> &Mutex<Vec<TraceEvent>> {
        let key = txn.seq ^ ((txn.home.0 as u64) << 32);
        &self.shards[key as usize % SHARDS]
    }

    fn store(&self, shard: &Mutex<Vec<TraceEvent>>, events: Vec<TraceEvent>) {
        let n = events.len();
        if n == 0 {
            return;
        }
        if self.retained.fetch_add(n, Ordering::Relaxed) + n > self.config.max_events {
            self.retained.fetch_sub(n, Ordering::Relaxed);
            self.dropped.fetch_add(n as u64, Ordering::Relaxed);
            return;
        }
        shard.lock().extend(events);
    }

    /// Records one completed span (participant / network side). The caller
    /// is expected to have checked [`Tracer::sampled`] first.
    pub fn record(&self, event: TraceEvent) {
        let shard = self.shard(event.txn);
        self.store(shard, vec![event]);
    }

    /// Convenience: records a span that started at `start_us` and ends now.
    pub fn span_since(
        &self,
        txn: TxnId,
        track: Track,
        label: impl Into<String>,
        start_us: u64,
        detail: impl Into<String>,
    ) {
        let end = self.now_us();
        self.record(TraceEvent {
            txn,
            track,
            label: label.into(),
            start_us,
            dur_us: end.saturating_sub(start_us),
            detail: detail.into(),
        });
    }

    /// Records one phase latency sample. Phase histograms are always
    /// populated while tracing is enabled, independent of span sampling.
    pub fn record_phase(&self, phase: Phase, dur: Duration) {
        self.phases[phase.index()].lock().record_duration(dur);
    }

    /// Finishes a transaction's coordinator-side trace. The coordinator
    /// buffers its spans locally for *every* transaction and hands them in
    /// here; they are retained when the transaction is sampled **or** slow
    /// enough for the worst-N ring. Returns whether the spans were kept.
    pub fn finish_txn(&self, txn: TxnId, total: Duration, events: Vec<TraceEvent>) -> bool {
        let dur_us = u64::try_from(total.as_micros()).unwrap_or(u64::MAX);
        let slow = self.slowest.lock().offer(txn, dur_us);
        let keep = self.sampled(txn) || slow;
        if keep {
            let shard = self.shard(txn);
            self.store(shard, events);
        }
        keep
    }

    /// Records one meter sample — a raw magnitude (queue depth, batch
    /// size), not a duration. Like phase histograms, meters are always
    /// populated while tracing is enabled, independent of span sampling.
    pub fn record_meter(&self, meter: Meter, value: u64) {
        self.meters[meter.index()].lock().record(value);
    }

    /// A merged clone of one meter's histogram.
    pub fn meter_histogram(&self, meter: Meter) -> LogHistogram {
        self.meters[meter.index()].lock().clone()
    }

    /// Per-meter magnitude summaries, keyed by [`Meter::name`]. The
    /// `LatencyStats` fields read as raw values, not microseconds. Meters
    /// with no samples are omitted.
    pub fn meter_stats(&self) -> BTreeMap<String, LatencyStats> {
        let mut out = BTreeMap::new();
        for meter in Meter::ALL {
            let hist = self.meters[meter.index()].lock();
            if !hist.is_empty() {
                out.insert(meter.name().to_string(), hist.to_latency_stats());
            }
        }
        out
    }

    /// A merged clone of one phase's histogram.
    pub fn phase_histogram(&self, phase: Phase) -> LogHistogram {
        self.phases[phase.index()].lock().clone()
    }

    /// Per-phase latency summaries, keyed by [`Phase::name`]. Phases with
    /// no samples are omitted.
    pub fn phase_stats(&self) -> BTreeMap<String, LatencyStats> {
        let mut out = BTreeMap::new();
        for phase in Phase::ALL {
            let hist = self.phases[phase.index()].lock();
            if !hist.is_empty() {
                out.insert(phase.name().to_string(), hist.to_latency_stats());
            }
        }
        out
    }

    /// Every retained span, sorted by transaction, then start time, then
    /// longest-first (so parents sort before their children).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::with_capacity(self.retained.load(Ordering::Relaxed));
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by(|a, b| (a.txn, a.start_us, b.dur_us).cmp(&(b.txn, b.start_us, a.dur_us)));
        all
    }

    /// The retained spans of one transaction, in span-tree order.
    pub fn txn_events(&self, txn: TxnId) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .shard(txn)
            .lock()
            .iter()
            .filter(|e| e.txn == txn)
            .cloned()
            .collect();
        events.sort_by(|a, b| (a.start_us, b.dur_us).cmp(&(b.start_us, a.dur_us)));
        events
    }

    /// Distinct transactions with retained spans, sorted.
    pub fn traced_txns(&self) -> Vec<TxnId> {
        let mut txns: Vec<TxnId> = Vec::new();
        for shard in &self.shards {
            txns.extend(shard.lock().iter().map(|e| e.txn));
        }
        txns.sort_unstable();
        txns.dedup();
        txns
    }

    /// The worst-N ring contents: `(txn, total duration µs)`, slowest
    /// first.
    pub fn slowest(&self) -> Vec<(TxnId, u64)> {
        let mut entries: Vec<(TxnId, u64)> = self
            .slowest
            .lock()
            .entries
            .iter()
            .map(|&(d, t)| (t, d))
            .collect();
        entries.sort_by_key(|&(_, dur)| std::cmp::Reverse(dur));
        entries
    }

    /// Events dropped because the retention cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn event(t: TxnId, label: &str, start_us: u64, dur_us: u64) -> TraceEvent {
        TraceEvent {
            txn: t,
            track: Track::Coordinator,
            label: label.into(),
            start_us,
            dur_us,
            detail: String::new(),
        }
    }

    #[test]
    fn sampling_is_deterministic_on_the_txn_id() {
        let tracer = Tracer::new(TraceConfig::sample_all().with_sample_one_in(4));
        assert!(tracer.sampled(txn(0)));
        assert!(tracer.sampled(txn(8)));
        assert!(!tracer.sampled(txn(3)));
        let none = Tracer::new(TraceConfig::histograms_only());
        assert!(!none.sampled(txn(0)));
        let all = Tracer::new(TraceConfig::sample_all());
        assert!(all.sampled(txn(17)));
    }

    #[test]
    fn events_round_trip_through_shards() {
        let tracer = Tracer::new(TraceConfig::sample_all());
        for seq in 0..40 {
            tracer.record(event(txn(seq), "leg", seq, 5));
        }
        let all = tracer.events();
        assert_eq!(all.len(), 40);
        assert_eq!(tracer.traced_txns().len(), 40);
        let one = tracer.txn_events(txn(7));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].start_us, 7);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn retention_cap_counts_drops_instead_of_growing() {
        let mut config = TraceConfig::sample_all();
        config.max_events = 3;
        let tracer = Tracer::new(config);
        for seq in 0..10 {
            tracer.record(event(txn(seq), "leg", seq, 1));
        }
        assert_eq!(tracer.events().len(), 3);
        assert_eq!(tracer.dropped(), 7);
    }

    #[test]
    fn worst_n_ring_keeps_slow_unsampled_transactions() {
        // Sampling keeps nothing, but the ring (capacity 2) must still
        // retain the two slowest transactions' coordinator spans.
        let mut config = TraceConfig::histograms_only();
        config.slowest_capacity = 2;
        let tracer = Tracer::new(config);
        for seq in 0..10u64 {
            let total = Duration::from_micros(100 * (seq + 1));
            tracer.finish_txn(txn(seq), total, vec![event(txn(seq), "conv", 0, 100)]);
        }
        let slowest = tracer.slowest();
        assert_eq!(slowest.len(), 2);
        assert_eq!(slowest[0].0, txn(9));
        assert_eq!(slowest[1].0, txn(8));
        // Spans for ring members were retained even though unsampled. The
        // ring admits transactions optimistically in arrival order, so
        // early (later-evicted) members may also have left spans behind;
        // what matters is that the final slowest set is present.
        for (t, _) in slowest {
            assert!(!tracer.txn_events(t).is_empty());
        }
    }

    #[test]
    fn phase_histograms_aggregate_independently_of_sampling() {
        let tracer = Tracer::new(TraceConfig::histograms_only());
        tracer.record_phase(Phase::LockWait, Duration::from_micros(50));
        tracer.record_phase(Phase::LockWait, Duration::from_micros(150));
        tracer.record_phase(Phase::WalForce, Duration::from_micros(10));
        let stats = tracer.phase_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats["lock-wait"].count, 2);
        assert_eq!(stats["wal-force"].count, 1);
        assert!(!stats.contains_key("prepare"));
        assert!(!tracer.phase_histogram(Phase::LockWait).is_empty());
    }

    #[test]
    fn meter_histograms_record_raw_magnitudes() {
        let tracer = Tracer::new(TraceConfig::histograms_only());
        tracer.record_meter(Meter::ReactorQueueDepth, 3);
        tracer.record_meter(Meter::ReactorQueueDepth, 17);
        tracer.record_meter(Meter::ReactorBatchSize, 8);
        let stats = tracer.meter_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats["reactor-queue-depth"].count, 2);
        assert_eq!(stats["reactor-batch-size"].count, 1);
        assert!(!tracer.meter_histogram(Meter::ReactorBatchSize).is_empty());
        // An untouched tracer reports no meters at all.
        let idle = Tracer::new(TraceConfig::sample_all());
        assert!(idle.meter_stats().is_empty());
    }

    #[test]
    fn span_since_computes_duration_from_the_epoch_clock() {
        let tracer = Tracer::new(TraceConfig::sample_all());
        let start = tracer.now_us();
        tracer.span_since(txn(1), Track::Net, "queue", start, "KIND");
        let events = tracer.txn_events(txn(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "queue");
        assert_eq!(events[0].detail, "KIND");
    }
}
