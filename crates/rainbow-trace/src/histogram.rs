//! Constant-memory log-bucketed latency histogram.
//!
//! An HdrHistogram-style design: values below [`LINEAR_LIMIT`] get one
//! bucket each (exact), and every further power-of-two "era" is split into
//! 16 sub-buckets, so the relative bucket width never exceeds 1/16
//! (≈ 6.25 %). The bucket array covers the whole `u64` range with a fixed
//! 976 counters, so a histogram costs a few kilobytes no matter how many
//! samples are recorded — unlike the unbounded `Vec<Duration>` it replaces
//! in the progress monitor.
//!
//! Histograms are mergeable (bucket-wise addition), which is what lets
//! per-shard and per-site recorders be combined into one cluster-wide
//! summary without retaining samples anywhere.

use rainbow_common::LatencyStats;
use std::time::Duration;

/// Values below this are counted in width-1 buckets (exact).
const LINEAR_LIMIT: u64 = 32;
/// Sub-buckets per power-of-two era above the linear range.
const SUB_BUCKETS: u64 = 16;
/// Total bucket count: 32 linear + 59 eras × 16 sub-buckets.
const N_BUCKETS: usize = 976;

/// A constant-memory, mergeable latency histogram over `u64` microsecond
/// values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    sum_sq: f64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            sum_sq: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for a value.
    pub fn index_for(value: u64) -> usize {
        if value < LINEAR_LIMIT {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64; // ≥ 5
        let shift = msb - 4; // brings the value into [16, 32)
        let offset = (value >> shift) - SUB_BUCKETS;
        (LINEAR_LIMIT + (shift - 1) * SUB_BUCKETS + offset) as usize
    }

    /// The `[low, high)` bounds of a bucket. Every value recorded into the
    /// bucket satisfies `low <= value < high`, except the very top bucket,
    /// whose upper bound saturates at `u64::MAX` and is inclusive there.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if (index as u64) < LINEAR_LIMIT {
            return (index as u64, index as u64 + 1);
        }
        let e = index as u64 - LINEAR_LIMIT;
        let shift = e / SUB_BUCKETS + 1;
        let offset = e % SUB_BUCKETS;
        let low = (SUB_BUCKETS + offset) << shift;
        let high = low.saturating_add(1u64 << shift);
        (low, high)
    }

    /// Records one value (in microseconds).
    pub fn record(&mut self, value_us: u64) {
        self.counts[Self::index_for(value_us)] += 1;
        self.count += 1;
        self.sum += value_us as u128;
        self.sum_sq += (value_us as f64) * (value_us as f64);
        self.min = self.min.min(value_us);
        self.max = self.max.max(value_us);
    }

    /// Records one duration, truncated to whole microseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Merges another histogram into this one. Bucket-wise addition: the
    /// result is identical (bucket for bucket) to having recorded both
    /// sample streams into a single histogram, in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded values (the sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population standard deviation of the recorded values.
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = (self.sum_sq / self.count as f64) - mean * mean;
        var.max(0.0).sqrt()
    }

    /// The nearest-rank quantile: walks the buckets to the one holding the
    /// `⌈q·n⌉`-th smallest sample and returns that bucket's midpoint,
    /// clamped into `[min, max]`. The answer is always within one bucket
    /// width of the exact sorted-sample nearest-rank value.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            seen += bucket_count;
            if seen >= rank {
                let (low, high) = Self::bucket_bounds(index);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summarizes the histogram as the workspace-wide [`LatencyStats`]
    /// (count, mean, stddev, min/max, p50/p95/p99/p999).
    pub fn to_latency_stats(&self) -> LatencyStats {
        if self.count == 0 {
            return LatencyStats::default();
        }
        LatencyStats {
            count: self.count,
            mean_us: self.mean(),
            min_us: self.min(),
            max_us: self.max(),
            p50_us: self.value_at_quantile(0.50),
            p95_us: self.value_at_quantile(0.95),
            p99_us: self.value_at_quantile(0.99),
            p999_us: self.value_at_quantile(0.999),
            stddev_us: self.stddev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_monotonic_and_in_range() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            let base = 1u64 << exp;
            for nudge in [0i64, 1, -1, 7] {
                if let Some(v) = base.checked_add_signed(nudge) {
                    values.push(v);
                }
            }
        }
        values.push(u64::MAX);
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = LogHistogram::index_for(v);
            assert!(idx < N_BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "bucket index not monotone at {v}");
            last = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record(v);
        }
        for v in 0..LINEAR_LIMIT {
            let (low, high) = LogHistogram::bucket_bounds(LogHistogram::index_for(v));
            assert_eq!((low, high), (v, v + 1));
        }
        assert_eq!(h.count(), LINEAR_LIMIT);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), LINEAR_LIMIT - 1);
    }

    #[test]
    fn quantiles_match_uniform_millisecond_samples() {
        // Same shape as the LatencyStats unit test: 1..=100 ms.
        let mut h = LogHistogram::new();
        for ms in 1..=100u64 {
            h.record(ms * 1000);
        }
        let stats = h.to_latency_stats();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.min_us, 1_000);
        assert_eq!(stats.max_us, 100_000);
        assert!((stats.mean_us - 50_500.0).abs() < 1.0);
        assert!(
            stats.p50_us >= 49_000 && stats.p50_us <= 52_000,
            "{stats:?}"
        );
        assert!(
            stats.p95_us >= 94_000 && stats.p95_us <= 98_304,
            "{stats:?}"
        );
        assert!(stats.p99_us >= 98_000, "{stats:?}");
        assert!(stats.p999_us >= stats.p99_us);
        assert!((stats.stddev_us - 28_866.0).abs() < 2_000.0);
    }

    #[test]
    fn single_sample_is_reported_exactly() {
        let mut h = LogHistogram::new();
        h.record(7_000);
        let stats = h.to_latency_stats();
        assert_eq!(stats.min_us, 7_000);
        assert_eq!(stats.max_us, 7_000);
        // Midpoint clamping pins every quantile to the one sample.
        assert_eq!(stats.p50_us, 7_000);
        assert_eq!(stats.p999_us, 7_000);
        assert_eq!(stats.stddev_us, 0.0);
    }

    #[test]
    fn empty_histogram_summarizes_to_default() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.to_latency_stats(), LatencyStats::default());
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for v in [3u64, 50, 999, 12_345, 1_000_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [8u64, 64, 2_048, 77_777] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.to_latency_stats(), combined.to_latency_stats());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LogHistogram::new();
        a.record(42);
        let before = a.to_latency_stats();
        a.merge(&LogHistogram::new());
        assert_eq!(a.to_latency_stats(), before);
        let mut empty = LogHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.to_latency_stats(), before);
    }
}
