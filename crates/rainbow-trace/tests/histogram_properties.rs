//! Property-based tests for the log-bucketed histogram: bucket bounds
//! always contain the recorded value, merging is order-independent, and
//! quantiles stay within one bucket width of the exact sorted-sample
//! nearest-rank answer.

use proptest::prelude::*;
use rainbow_trace::LogHistogram;

/// The exact nearest-rank quantile over a sorted sample set.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every recorded value lies within its bucket's `[low, high)` bounds.
    #[test]
    fn recorded_value_is_within_its_bucket_bounds(value in 0u64..u64::MAX) {
        let index = LogHistogram::index_for(value);
        let (low, high) = LogHistogram::bucket_bounds(index);
        // The top bucket's high saturates at u64::MAX and is inclusive.
        prop_assert!(low <= value && (value < high || high == u64::MAX),
            "value {value} outside bucket {index} = [{low}, {high})");
    }

    /// Merging histograms is order-independent: recording two streams
    /// into separate histograms and merging (in either direction) yields
    /// the same summary as one histogram fed everything.
    #[test]
    fn merge_is_order_independent(
        left in prop::collection::vec(0u64..10_000_000, 0..80),
        right in prop::collection::vec(0u64..10_000_000, 0..80),
    ) {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for &v in &left {
            a.record(v);
            combined.record(v);
        }
        for &v in &right {
            b.record(v);
            combined.record(v);
        }
        let mut a_then_b = a.clone();
        a_then_b.merge(&b);
        let mut b_then_a = b.clone();
        b_then_a.merge(&a);
        prop_assert_eq!(a_then_b.count(), combined.count());
        prop_assert_eq!(a_then_b.to_latency_stats(), b_then_a.to_latency_stats());
        prop_assert_eq!(a_then_b.to_latency_stats(), combined.to_latency_stats());
    }

    /// Histogram quantiles are within one bucket width of the exact
    /// nearest-rank answer computed from the sorted samples.
    #[test]
    fn quantiles_within_one_bucket_width_of_exact(
        mut samples in prop::collection::vec(0u64..100_000_000, 1..120),
    ) {
        let mut hist = LogHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();
        for q in [0.50, 0.95, 0.99, 0.999] {
            let exact = exact_nearest_rank(&samples, q);
            let approx = hist.value_at_quantile(q);
            let (low, high) = LogHistogram::bucket_bounds(LogHistogram::index_for(exact));
            let width = high - low;
            let error = approx.abs_diff(exact);
            prop_assert!(
                error <= width,
                "q={q}: approx {approx} vs exact {exact} (bucket width {width})"
            );
        }
    }

    /// Count, min, max and mean are exact whatever the input stream.
    #[test]
    fn scalar_summaries_are_exact(samples in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut hist = LogHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let exact_mean =
            samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(hist.max(), *samples.iter().max().unwrap());
        prop_assert!((hist.mean() - exact_mean).abs() < 1e-6 * (1.0 + exact_mean));
    }
}
