//! Experiment E-FAIL — fault injection: commit rate under site crashes.
//!
//! The paper's GUI can "inject network and site failures and recoveries";
//! this bench uses the fault injector to crash 0, 1 and 2 of 5 sites and
//! measures the commit rate of ROWA vs Quorum Consensus for a write-heavy
//! workload, plus the orphan count when the crashed site is a home site.
//!
//! Expected shape: with no failures both protocols commit everything; with
//! one or two crashed copy holders ROWA writes block (every copy is needed)
//! while QC keeps committing as long as a majority of copies is alive. This
//! is the classic availability argument for quorum consensus that the
//! Rainbow authors' earlier SETH work studied.

use rainbow_bench::{run_experiment, stack, standard_table, RunSpec};
use rainbow_common::protocol::{AcpKind, CcpKind, RcpKind};
use rainbow_control::ExperimentTable;
use rainbow_wlg::WorkloadProfile;

fn main() {
    println!("Experiment E-FAIL: commit rate under injected site failures");
    println!("paper reference: Section 3 (fault/recovery injector)\n");

    let mut summary = ExperimentTable::new(
        "commit rate vs crashed sites (5 sites, write-heavy, replication degree 5)",
        &[
            "RCP",
            "crashed",
            "commit%",
            "abort%RCP",
            "orphans",
            "msgs/txn",
        ],
    );
    let mut detail = Vec::new();

    for rcp in [RcpKind::Rowa, RcpKind::QuorumConsensus] {
        for crashed in [0usize, 1, 2] {
            // Crash the highest-numbered sites; the workload keeps using
            // cluster-chosen home sites, so some transactions are submitted
            // to crashed homes and become orphans.
            let crash_sites: Vec<u32> = (0..crashed).map(|i| (4 - i) as u32).collect();
            let spec = RunSpec::baseline("")
                .with_sites(5)
                .with_items(10)
                .with_replication(5)
                .with_profile(WorkloadProfile::WriteHeavy)
                .with_transactions(100)
                .with_mpl(8)
                .with_seed(crashed as u64 + 1)
                .with_stack(stack(
                    rcp,
                    CcpKind::TwoPhaseLocking,
                    AcpKind::TwoPhaseCommit,
                ))
                .with_crashed_sites(crash_sites);
            let mut point = run_experiment(&spec);
            point.label = format!("{rcp} crashed={crashed}");
            summary.row(&[
                rcp.to_string(),
                crashed.to_string(),
                format!("{:.1}", point.commit_rate * 100.0),
                format!("{:.1}", point.abort_rate_rcp * 100.0),
                point.orphans.to_string(),
                format!("{:.1}", point.messages_per_txn),
            ]);
            detail.push(point);
        }
    }

    println!("{}", summary.render());
    println!("{}", standard_table("full statistics", &detail).render());
}
