//! Hot-path microbenchmarks for the data-plane overhaul: interned item ids,
//! the sharded lock table, and the parallel quorum fan-out.
//!
//! Each measurement compares the current implementation against an embedded
//! **baseline** reproducing the seed design: `String`-keyed maps behind one
//! global mutex (lock table) / one `RwLock`-guarded `BTreeMap` (store), and
//! the strictly sequential one-quorum-at-a-time RCP loop. Results are
//! printed as a table and written to `BENCH_hotpath.json` at the repo root.
//!
//! Run with: `cargo bench --bench hot_path` (add `-- --quick` for a smoke
//! run, as CI does; `--out PATH` writes JSON to PATH even in quick mode,
//! which is how the `bench-regression` gate gets a fresh measurement).

use criterion::black_box;
use rainbow_cc::{LockManager, LockMode};
use rainbow_common::protocol::{DeadlockPolicy, ProtocolStack};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, SiteId, Timestamp, TxnId, Value, Version};
use rainbow_control::{Session, WorkloadRunner};
use rainbow_storage::SiteStorage;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Baseline: the seed's data-plane layout
// ---------------------------------------------------------------------------

/// The seed's lock table and store: one global mutex, `String` keys cloned
/// on every access, `retain`-based release, `BTreeMap` storage.
mod baseline {
    use super::*;

    /// The seed's `LockTable`: every field in one struct behind one mutex,
    /// `String` keys, released with `retain` scans and an unconditional
    /// condvar broadcast — a faithful port of the pre-overhaul
    /// `crates/rainbow-cc/src/lock.rs`.
    #[derive(Default)]
    struct ItemState {
        holders: Vec<(TxnId, bool)>,
        waiters: std::collections::VecDeque<TxnId>,
    }

    #[derive(Default)]
    struct Table {
        items: HashMap<String, ItemState>,
        held: HashMap<TxnId, HashSet<String>>,
        timestamps: HashMap<TxnId, Timestamp>,
        wounded: HashSet<TxnId>,
        waits_for: HashMap<TxnId, HashSet<TxnId>>,
    }

    pub struct GlobalLockTable {
        table: Mutex<Table>,
        released: Condvar,
    }

    impl GlobalLockTable {
        pub fn new() -> Self {
            GlobalLockTable {
                table: Mutex::new(Table::default()),
                released: Condvar::new(),
            }
        }

        pub fn acquire(&self, txn: TxnId, ts: Timestamp, item: &str, exclusive: bool) -> bool {
            let mut table = self.table.lock().unwrap();
            table.timestamps.insert(txn, ts);
            if table.wounded.contains(&txn) {
                return false;
            }
            let state = table.items.entry(item.to_string()).or_default();
            let compatible = state
                .holders
                .iter()
                .all(|(holder, held_exclusive)| *holder == txn || (!*held_exclusive && !exclusive));
            if !compatible {
                // Wait-die would now consult the holders' timestamps; the
                // bench workload never conflicts, so this path is cold.
                return false;
            }
            if !state.holders.iter().any(|(holder, _)| *holder == txn) {
                state.holders.push((txn, exclusive));
            }
            table.held.entry(txn).or_default().insert(item.to_string());
            // The seed's grant path ran `cleanup_waiter` unconditionally:
            // a waiter-list retain scan plus a wait-for-graph removal.
            if let Some(state) = table.items.get_mut(item) {
                state.waiters.retain(|waiter| *waiter != txn);
            }
            table.waits_for.remove(&txn);
            true
        }

        pub fn release_all(&self, txn: TxnId) {
            let mut table = self.table.lock().unwrap();
            if let Some(items) = table.held.remove(&txn) {
                for item in items {
                    if let Some(state) = table.items.get_mut(&item) {
                        state.holders.retain(|(holder, _)| *holder != txn);
                        if state.holders.is_empty() && state.waiters.is_empty() {
                            table.items.remove(&item);
                        }
                    }
                }
            }
            table.wounded.remove(&txn);
            table.waits_for.remove(&txn);
            table.timestamps.remove(&txn);
            drop(table);
            // The seed broadcast on every release, waiters or not.
            self.released.notify_all();
        }
    }

    /// The seed's store: `BTreeMap` keyed by owned strings behind a
    /// `RwLock`, with the per-access key clone the `ItemId(String)` design
    /// forced on callers, plus the seed's stage → install → forced-log
    /// commit cycle.
    type StagedWrites = HashMap<TxnId, BTreeMap<String, (Value, Version)>>;
    type CommitLog = Vec<(TxnId, Vec<(String, Value, Version)>)>;

    pub struct BTreeStore {
        copies: RwLock<BTreeMap<String, (Value, Version)>>,
        staged: Mutex<StagedWrites>,
        log: Mutex<CommitLog>,
    }

    impl BTreeStore {
        pub fn new(items: &[String]) -> Self {
            let copies = items
                .iter()
                .map(|name| (name.clone(), (Value::Int(1000), Version(0))))
                .collect();
            BTreeStore {
                copies: RwLock::new(copies),
                staged: Mutex::new(HashMap::new()),
                log: Mutex::new(Vec::new()),
            }
        }

        pub fn read(&self, item: &str) -> Option<(Value, Version)> {
            // The seed cloned the heap-backed id on every access path
            // (reads-map inserts, message payloads, lock bookkeeping).
            let key: String = item.to_string();
            self.copies.read().unwrap().get(&key).cloned()
        }

        pub fn stage_write(&self, txn: TxnId, item: &str, value: Value, version: Version) {
            self.staged
                .lock()
                .unwrap()
                .entry(txn)
                .or_default()
                .insert(item.to_string(), (value, version));
        }

        pub fn commit(&self, txn: TxnId) -> usize {
            let writes = self.staged.lock().unwrap().remove(&txn).unwrap_or_default();
            let mut installed = Vec::with_capacity(writes.len());
            {
                let mut copies = self.copies.write().unwrap();
                for (item, (value, version)) in writes {
                    copies.insert(item.clone(), (value.clone(), version));
                    installed.push((item, value, version));
                }
            }
            let count = installed.len();
            // The seed forced a commit record carrying a clone of the writes.
            self.log.lock().unwrap().push((txn, installed));
            count
        }
    }
}

// ---------------------------------------------------------------------------
// Measurement helpers
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Throughput {
    ops_per_sec: f64,
    ns_per_op: f64,
}

fn run_threads<F>(threads: usize, iters_per_thread: u64, op: F) -> Throughput
where
    F: Fn(usize, u64) + Send + Sync,
{
    let op = &op;
    let start = Instant::now();
    thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..iters_per_thread {
                    op(t, i);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let total_ops = threads as f64 * iters_per_thread as f64;
    Throughput {
        ops_per_sec: total_ops / elapsed.as_secs_f64(),
        ns_per_op: elapsed.as_nanos() as f64 / total_ops,
    }
}

fn item_names(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("bench.item.{i:05}")).collect()
}

/// Runs a paired measurement three times and returns the run with the
/// median *combined* throughput, damping scheduler noise on small CI boxes
/// without letting the two sides be picked from different runs.
fn median_of_3(mut measure: impl FnMut() -> (Throughput, Throughput)) -> (Throughput, Throughput) {
    let mut runs: Vec<(Throughput, Throughput)> = (0..3).map(|_| measure()).collect();
    runs.sort_by(|a, b| {
        let ka = a.0.ops_per_sec + a.1.ops_per_sec;
        let kb = b.0.ops_per_sec + b.1.ops_per_sec;
        ka.partial_cmp(&kb).expect("finite throughput")
    });
    runs[1]
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

const THREADS: usize = 4;

fn bench_lock_tables(iters: u64) -> (Throughput, Throughput) {
    let names = item_names(THREADS * 16);

    let base = baseline::GlobalLockTable::new();
    let baseline_result = run_threads(THREADS, iters, |t, i| {
        let txn = TxnId::new(SiteId(t as u32), i);
        let ts = Timestamp::new(i + 1, t as u32);
        // Each iteration locks 4 distinct items and releases them, like a
        // small transaction; threads use disjoint item sets (the workload
        // has no logical contention — only data-structure contention).
        for k in 0..4 {
            let item = &names[t * 16 + ((i as usize + k) % 16)];
            black_box(base.acquire(txn, ts, item, true));
        }
        base.release_all(txn);
    });

    let sharded = LockManager::new(DeadlockPolicy::WaitDie, Duration::from_millis(10));
    let ids: Vec<ItemId> = names.iter().map(ItemId::new).collect();
    let ids = &ids;
    let sharded_ref = &sharded;
    let sharded_result = run_threads(THREADS, iters, |t, i| {
        let txn = TxnId::new(SiteId(t as u32), i);
        let ts = Timestamp::new(i + 1, t as u32);
        for k in 0..4 {
            let item = &ids[t * 16 + ((i as usize + k) % 16)];
            black_box(
                sharded_ref
                    .acquire(txn, ts, item, LockMode::Exclusive)
                    .is_ok(),
            );
        }
        sharded_ref.release_all(txn);
    });

    (baseline_result, sharded_result)
}

fn bench_store_reads(iters: u64) -> (Throughput, Throughput) {
    const ITEMS: usize = 10_000;
    let names = item_names(ITEMS);

    let base = baseline::BTreeStore::new(&names);
    let names_ref = &names;
    let base_ref = &base;
    let baseline_result = run_threads(THREADS, iters, |t, i| {
        let idx = ((t as u64).wrapping_mul(7919).wrapping_add(i * 31)) as usize % ITEMS;
        black_box(base_ref.read(&names_ref[idx]));
    });

    let storage = SiteStorage::new(SiteId(0));
    let initial: Vec<(ItemId, Value)> = names
        .iter()
        .map(|name| (ItemId::new(name), Value::Int(1000)))
        .collect();
    storage.initialize(&initial);
    let ids: Vec<ItemId> = names.iter().map(ItemId::new).collect();
    let (ids_ref, storage_ref) = (&ids, &storage);
    let interned_result = run_threads(THREADS, iters, |t, i| {
        let idx = ((t as u64).wrapping_mul(7919).wrapping_add(i * 31)) as usize % ITEMS;
        // The clone mirrors what callers do with the id on every access
        // (reads-map inserts, message payloads) — for interned ids it is an
        // atomic increment instead of a heap copy.
        let id = ids_ref[idx].clone();
        black_box(storage_ref.read(&id).ok());
    });

    (baseline_result, interned_result)
}

fn bench_store_writes(iters: u64) -> (Throughput, Throughput) {
    const ITEMS: usize = 4_096;
    let names = item_names(ITEMS);

    let base = baseline::BTreeStore::new(&names);
    let (names_ref, base_ref) = (&names, &base);
    let baseline_result = run_threads(THREADS, iters, |t, i| {
        let idx = ((t as u64).wrapping_mul(104_729).wrapping_add(i * 17)) as usize % ITEMS;
        let txn = TxnId::new(SiteId(t as u32), i);
        base_ref.stage_write(txn, &names_ref[idx], Value::Int(i as i64), Version(i));
        black_box(base_ref.commit(txn));
    });

    let storage = SiteStorage::new(SiteId(0));
    let initial: Vec<(ItemId, Value)> = names
        .iter()
        .map(|name| (ItemId::new(name), Value::Int(1000)))
        .collect();
    storage.initialize(&initial);
    let ids: Vec<ItemId> = names.iter().map(ItemId::new).collect();
    let (ids_ref, storage_ref) = (&ids, &storage);
    let interned_result = run_threads(THREADS, iters, |t, i| {
        let idx = ((t as u64).wrapping_mul(104_729).wrapping_add(i * 17)) as usize % ITEMS;
        let txn = TxnId::new(SiteId(t as u32), i);
        storage_ref.stage_write(txn, ids_ref[idx].clone(), Value::Int(i as i64), Version(i));
        black_box(storage_ref.commit(txn));
    });

    (baseline_result, interned_result)
}

fn quorum_latency(parallel: bool, txns: usize, ops_per_txn: usize) -> f64 {
    let stack = ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(400))
        .with_quorum_timeout(Duration::from_millis(1500))
        .with_commit_timeout(Duration::from_millis(1500))
        .with_parallel_quorums(parallel);
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    // A realistic LAN link: quorum fan-out exists to overlap *network*
    // latency, so the end-to-end comparison models one.
    session
        .configure_network(rainbow_net::NetworkConfig::lan(
            Duration::from_micros(150),
            Duration::from_micros(400),
        ))
        .unwrap();
    session.configure_protocols(stack).unwrap();
    session
        .configure_uniform_database(ops_per_txn.max(8), 100, 3)
        .unwrap();
    session.start().unwrap();
    let wlg = WorkloadRunner::new(&session);

    let mut total = Duration::ZERO;
    let mut committed = 0usize;
    for round in 0..txns {
        let spec = TxnSpec::new(
            format!("bench-{round}"),
            (0..ops_per_txn)
                .map(|i| Operation::read(format!("x{i}")))
                .collect(),
        );
        let result = wlg.submit(spec).unwrap();
        if result.committed() {
            total += result.response_time;
            committed += 1;
        }
    }
    assert!(committed > 0, "quorum bench: no transaction committed");
    (total.as_secs_f64() * 1e6) / committed as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_override = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (lock_iters, store_iters, txns) = if quick {
        (20_000, 50_000, 8)
    } else {
        (200_000, 500_000, 40)
    };

    println!("hot-path benchmarks ({THREADS} threads; baseline = String keys + global mutex)\n");

    let (lock_base, lock_sharded) = median_of_3(|| bench_lock_tables(lock_iters));
    let lock_speedup = lock_sharded.ops_per_sec / lock_base.ops_per_sec;
    println!(
        "lock acquire/release   baseline {:>12.0} ops/s ({:>7.1} ns/op)",
        lock_base.ops_per_sec, lock_base.ns_per_op
    );
    println!(
        "                       sharded  {:>12.0} ops/s ({:>7.1} ns/op)   {lock_speedup:.2}x",
        lock_sharded.ops_per_sec, lock_sharded.ns_per_op
    );

    let (read_base, read_interned) = median_of_3(|| bench_store_reads(store_iters));
    let read_speedup = read_interned.ops_per_sec / read_base.ops_per_sec;
    println!(
        "store read             baseline {:>12.0} ops/s ({:>7.1} ns/op)",
        read_base.ops_per_sec, read_base.ns_per_op
    );
    println!(
        "                       interned {:>12.0} ops/s ({:>7.1} ns/op)   {read_speedup:.2}x",
        read_interned.ops_per_sec, read_interned.ns_per_op
    );

    let (write_base, write_interned) = median_of_3(|| bench_store_writes(store_iters / 5));
    let write_speedup = write_interned.ops_per_sec / write_base.ops_per_sec;
    println!(
        "store stage+commit     baseline {:>12.0} ops/s ({:>7.1} ns/op)",
        write_base.ops_per_sec, write_base.ns_per_op
    );
    println!(
        "                       interned {:>12.0} ops/s ({:>7.1} ns/op)   {write_speedup:.2}x",
        write_interned.ops_per_sec, write_interned.ns_per_op
    );

    let sequential_us = quorum_latency(false, txns, 8);
    let parallel_us = quorum_latency(true, txns, 8);
    let quorum_speedup = sequential_us / parallel_us;
    println!("quorum e2e (8 reads)   sequential {sequential_us:>10.0} µs/txn");
    println!(
        "                       parallel   {parallel_us:>10.0} µs/txn      {quorum_speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"config\": {{\"threads\": {THREADS}, \"lock_iters_per_thread\": {lock_iters}, \"store_iters_per_thread\": {store_iters}, \"quorum_txns\": {txns}, \"quick\": {quick}}},\n  \"lock_acquire_release\": {{\"baseline_ops_per_sec\": {:.0}, \"sharded_ops_per_sec\": {:.0}, \"speedup\": {:.2}}},\n  \"store_read\": {{\"baseline_ops_per_sec\": {:.0}, \"interned_ops_per_sec\": {:.0}, \"speedup\": {:.2}}},\n  \"store_write\": {{\"baseline_ops_per_sec\": {:.0}, \"interned_ops_per_sec\": {:.0}, \"speedup\": {:.2}}},\n  \"quorum_end_to_end\": {{\"sequential_us_per_txn\": {:.1}, \"parallel_us_per_txn\": {:.1}, \"speedup\": {:.2}}}\n}}\n",
        lock_base.ops_per_sec,
        lock_sharded.ops_per_sec,
        lock_speedup,
        read_base.ops_per_sec,
        read_interned.ops_per_sec,
        read_speedup,
        write_base.ops_per_sec,
        write_interned.ops_per_sec,
        write_speedup,
        sequential_us,
        parallel_us,
        quorum_speedup,
    );
    if let Some(path) = out_override {
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\nresults written to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if quick {
        // Smoke runs (CI) must not clobber the committed full-run numbers.
        println!("\nquick run: BENCH_hotpath.json left untouched");
        return;
    }
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nresults written to BENCH_hotpath.json"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
