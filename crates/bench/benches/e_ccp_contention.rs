//! Experiment E-CCP — abort behaviour of the concurrency control protocols
//! under data contention.
//!
//! Section 2.1 lets the student pick 2PL or TSO (and Section 5 suggests MVTO
//! as an extension); Section 3 promises abort rates broken down by cause.
//! This bench sweeps the multiprogramming level on a hot-spot workload and
//! reports, per CCP, the commit rate, the CCP-attributed abort rate and the
//! throughput.
//!
//! Expected shape: aborts grow with MPL for every protocol; TSO aborts more
//! than 2PL at high contention (restarts instead of waits); MVTO removes
//! read-write conflicts so its abort rate stays the lowest; 2PL pays for its
//! lower abort rate with lock waits (higher response time).

use rainbow_bench::{run_experiment, stack, standard_table, RunSpec};
use rainbow_common::protocol::{AcpKind, CcpKind, RcpKind};
use rainbow_control::ExperimentTable;
use rainbow_wlg::WorkloadProfile;

fn main() {
    println!("Experiment E-CCP: 2PL vs TSO vs MVTO under contention");
    println!("paper reference: Sections 2.1, 3 and 5\n");

    let mut summary = ExperimentTable::new(
        "abort rate and throughput by CCP and multiprogramming level",
        &["CCP", "MPL", "commit%", "abort%CCP", "tput/s", "rt-mean ms"],
    );
    let mut detail = Vec::new();

    for ccp in [
        CcpKind::TwoPhaseLocking,
        CcpKind::TimestampOrdering,
        CcpKind::MultiversionTimestampOrdering,
    ] {
        for mpl in [1usize, 4, 8, 16] {
            let spec = RunSpec::baseline("")
                .with_sites(4)
                .with_items(16)
                .with_replication(3)
                .with_profile(WorkloadProfile::HotSpotContention)
                .with_transactions(150)
                .with_mpl(mpl)
                .with_seed(mpl as u64)
                .with_stack(stack(
                    RcpKind::QuorumConsensus,
                    ccp,
                    AcpKind::TwoPhaseCommit,
                ));
            let mut point = run_experiment(&spec);
            point.label = format!("{ccp} mpl={mpl}");
            summary.row(&[
                ccp.to_string(),
                mpl.to_string(),
                format!("{:.1}", point.commit_rate * 100.0),
                format!("{:.1}", point.abort_rate_ccp * 100.0),
                format!("{:.1}", point.throughput),
                format!("{:.2}", point.mean_response_ms),
            ]);
            detail.push(point);
        }
    }

    println!("{}", summary.render());
    println!("{}", standard_table("full statistics", &detail).render());
}
