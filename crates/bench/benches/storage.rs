//! Storage-engine commit throughput: memory vs disk, group commit on/off.
//!
//! Measures forced-commit throughput (the 2PC participant's "force a record
//! before voting YES" path) under concurrent committers against each
//! engine. The interesting number is the group-commit win: with fsync
//! batching, concurrent `append_forced` calls coalesce into one fsync per
//! batch; without it, every record pays a full fsync. The batched engine
//! must sustain at least 2x the unbatched commit throughput.
//!
//! Results are printed as a table and written to `BENCH_storage.json` at
//! the repo root. Run with `cargo bench --bench storage` (add `-- --quick`
//! for a smoke run that leaves the committed JSON untouched).

use rainbow_common::{ItemId, SiteId, TxnId, Value, Version};
use rainbow_storage::{DiskEngine, LogRecord, MemoryEngine, StorageConfig, StorageEngine};
use std::path::PathBuf;
use std::time::Instant;

const THREADS: usize = 8;

fn commit_record(thread: usize, seq: u64) -> LogRecord {
    LogRecord::Commit {
        txn: TxnId::new(SiteId(thread as u32), seq),
        writes: vec![(
            ItemId::new(format!("x{}", seq % 16)),
            Value::Int(seq as i64),
            Version(seq),
        )],
    }
}

struct Measurement {
    ops_per_sec: f64,
    fsyncs: u64,
}

/// `THREADS` concurrent committers each force `per_thread` commit records;
/// returns throughput and how many physical syncs the engine performed.
fn commit_throughput(engine: &dyn StorageEngine, per_thread: u64) -> Measurement {
    let syncs_before = engine.force_count();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            scope.spawn(move || {
                for seq in 0..per_thread {
                    engine.append_forced(commit_record(thread, seq));
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    Measurement {
        ops_per_sec: (THREADS as u64 * per_thread) as f64 / elapsed,
        fsyncs: engine.force_count() - syncs_before,
    }
}

fn bench_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rainbow-bench-storage-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn disk_measurement(label: &str, config: StorageConfig, per_thread: u64) -> Measurement {
    let dir = bench_dir(label);
    let engine = DiskEngine::new(&dir, &config, None);
    engine.recover().expect("fresh dir recovers");
    let result = commit_throughput(&engine, per_thread);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn print_row(name: &str, m: &Measurement, commits: u64, speedup: Option<f64>) {
    let tail = speedup
        .map(|s| format!("   {s:.2}x vs unbatched"))
        .unwrap_or_default();
    println!(
        "{name:<18} {:>12.0} commits/s   {:>7} fsyncs / {commits} commits{tail}",
        m.ops_per_sec, m.fsyncs
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The unbatched engine pays a real fsync per commit, so its budget has
    // to stay modest even in full runs.
    let (memory_per_thread, disk_per_thread, unbatched_per_thread) = if quick {
        (20_000u64, 200u64, 25u64)
    } else {
        (200_000, 2_000, 250)
    };

    println!("storage-engine forced-commit throughput ({THREADS} concurrent committers)\n");

    let memory = {
        let engine = MemoryEngine::new();
        commit_throughput(&engine, memory_per_thread)
    };
    print_row("memory", &memory, THREADS as u64 * memory_per_thread, None);

    // Same commit budget for both disk variants so fsync counts compare.
    let disk_config = StorageConfig::disk("unused-by-bench");
    let batched = disk_measurement("batched", disk_config.clone(), disk_per_thread);
    let unbatched = disk_measurement(
        "unbatched",
        disk_config.without_fsync_batching(),
        unbatched_per_thread,
    );
    let speedup = batched.ops_per_sec / unbatched.ops_per_sec;
    print_row(
        "disk (unbatched)",
        &unbatched,
        THREADS as u64 * unbatched_per_thread,
        None,
    );
    print_row(
        "disk (batched)",
        &batched,
        THREADS as u64 * disk_per_thread,
        Some(speedup),
    );
    println!(
        "\ngroup commit coalesced {} commits into {} fsyncs",
        THREADS as u64 * disk_per_thread,
        batched.fsyncs
    );

    assert!(
        speedup >= 2.0,
        "fsync batching must buy >= 2x commit throughput, got {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"config\": {{\"threads\": {THREADS}, \"memory_commits_per_thread\": {memory_per_thread}, \"disk_commits_per_thread\": {disk_per_thread}, \"unbatched_commits_per_thread\": {unbatched_per_thread}, \"quick\": {quick}}},\n  \"memory\": {{\"commits_per_sec\": {:.0}, \"fsyncs\": {}}},\n  \"disk_unbatched\": {{\"commits_per_sec\": {:.0}, \"fsyncs\": {}}},\n  \"disk_batched\": {{\"commits_per_sec\": {:.0}, \"fsyncs\": {}, \"speedup_vs_unbatched\": {:.2}}}\n}}\n",
        memory.ops_per_sec,
        memory.fsyncs,
        unbatched.ops_per_sec,
        unbatched.fsyncs,
        batched.ops_per_sec,
        batched.fsyncs,
        speedup,
    );
    if quick {
        // Smoke runs (CI) must not clobber the committed full-run numbers.
        println!("\nquick run: BENCH_storage.json left untouched");
        return;
    }
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nresults written to BENCH_storage.json"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
