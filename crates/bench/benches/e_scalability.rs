//! Experiment E-SCALE — throughput, response time and load balance as the
//! number of sites and the multiprogramming level grow.
//!
//! Section 3 lists "transaction throughput and response time measures" and
//! "load balance/imbalance indicators" among the output statistics. This
//! bench sweeps the number of sites (replication degree fixed at 3) and the
//! MPL and prints throughput, mean/p95 response time and the load-imbalance
//! coefficient; a second table shows the imbalance when every transaction is
//! pinned to a single home site (the pathological load the indicator is
//! meant to expose).

use rainbow_bench::{build_session, run_experiment, standard_table, RunSpec};
use rainbow_common::SiteId;
use rainbow_control::ExperimentTable;
use rainbow_wlg::{ArrivalProcess, HomePolicy, WorkloadProfile};

fn main() {
    println!("Experiment E-SCALE: throughput / response time / load balance");
    println!("paper reference: Section 3 statistics list\n");

    let mut summary = ExperimentTable::new(
        "throughput and response time vs number of sites (read-heavy, MPL sweep)",
        &[
            "sites",
            "MPL",
            "tput/s",
            "rt-mean ms",
            "rt-p95 ms",
            "imbalance",
        ],
    );
    let mut detail = Vec::new();

    for sites in [2usize, 4, 6, 8] {
        for mpl in [4usize, 16] {
            let spec = RunSpec::baseline("")
                .with_sites(sites)
                .with_items(4 * sites)
                .with_replication(3.min(sites))
                .with_profile(WorkloadProfile::ReadHeavy)
                .with_transactions(160)
                .with_mpl(mpl)
                .with_seed(sites as u64 * 10 + mpl as u64);
            let mut point = run_experiment(&spec);
            point.label = format!("{sites} sites mpl={mpl}");
            summary.row(&[
                sites.to_string(),
                mpl.to_string(),
                format!("{:.1}", point.throughput),
                format!("{:.2}", point.mean_response_ms),
                format!("{:.2}", point.p95_response_ms),
                format!("{:.3}", point.load_imbalance),
            ]);
            detail.push(point);
        }
    }
    println!("{}", summary.render());

    // Load-imbalance table: balanced (round-robin homes) vs all transactions
    // pinned to site 0.
    let mut imbalance = ExperimentTable::new(
        "load imbalance indicator: balanced vs single-home workloads (4 sites)",
        &["home policy", "imbalance (cv)", "tput/s"],
    );
    for (label, policy) in [
        ("round-robin", HomePolicy::RoundRobin),
        ("all at site0", HomePolicy::Fixed(SiteId(0))),
    ] {
        let spec = RunSpec::baseline("imbalance").with_sites(4).with_items(16);
        let session = build_session(&spec);
        let params = WorkloadProfile::ReadHeavy
            .params(
                session.config().database.item_ids(),
                session.site_ids(),
                120,
                7,
            )
            .with_home(policy);
        session
            .run_params(params, ArrivalProcess::Closed { mpl: 8 })
            .expect("workload");
        let stats = session.statistics().expect("stats");
        imbalance.row(&[
            label.to_string(),
            format!("{:.3}", stats.load.imbalance()),
            format!("{:.1}", stats.throughput()),
        ]);
    }
    println!("{}", imbalance.render());
    println!("{}", standard_table("full statistics", &detail).render());
}
