//! End-to-end commit-pipeline throughput: thread-per-conversation vs the
//! sharded reactor coordinator, at rising multiprogramming levels.
//!
//! Each measurement starts an in-process cluster (3 sites, memory engine,
//! perfect network — so coordination overhead, not I/O or link latency, is
//! what saturates), then drives a fixed pool of concurrent client threads
//! through short update transactions (one increment + commit: quorum
//! fan-out, ACP prepare, group-commit apply). Every client owns a distinct
//! item, so the burst measures the pipeline, not 2PL contention.
//!
//! The threads mode pays one spawned OS thread and one blocking reply
//! channel per transaction; the reactor mode runs the same protocol steps
//! on a fixed shard pool with per-tick message batching. The committed
//! `BENCH_pipeline.json` numbers are the performance contract the
//! `bench-regression` CI job enforces.
//!
//! Run with: `cargo bench --bench pipeline` (add `-- --quick` for a smoke
//! run, as CI does; `--out PATH` writes JSON to PATH even in quick mode).

use rainbow_common::protocol::{CoordinatorMode, ProtocolStack};
use rainbow_common::txn::TxnSpec;
use rainbow_common::Operation;
use rainbow_core::{Cluster, ClusterConfig};
use std::time::{Duration, Instant};

fn pipeline_stack(mode: CoordinatorMode) -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(400))
        .with_quorum_timeout(Duration::from_millis(1500))
        .with_commit_timeout(Duration::from_millis(1500))
        .with_coordinator(mode)
}

struct LevelResult {
    clients: usize,
    transactions: usize,
    txn_per_sec: f64,
    committed: usize,
}

/// Runs one mode at one multiprogramming level: `clients` concurrent
/// client threads, each committing `txns_per_client` single-increment
/// transactions against its own item.
fn run_level(mode: CoordinatorMode, clients: usize, txns_per_client: usize) -> LevelResult {
    let config = ClusterConfig::quick(3, clients, 3)
        .expect("cluster config")
        .with_stack(pipeline_stack(mode))
        .with_client_timeout(Duration::from_secs(20));
    let cluster = Cluster::start(config).expect("start cluster");

    // Warm up the conversation path (schema fetch, lazily built client
    // cores) outside the timed window.
    let warm = cluster.submit(TxnSpec::new("warmup", vec![Operation::increment("x0", 0)]));
    assert!(warm.committed(), "warmup must commit: {:?}", warm.outcome);

    let start = Instant::now();
    let committed: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let cluster = &cluster;
                scope.spawn(move || {
                    let mut committed = 0usize;
                    for i in 0..txns_per_client {
                        let result = cluster.submit(TxnSpec::new(
                            format!("p-{c}-{i}"),
                            vec![Operation::increment(format!("x{c}"), 1)],
                        ));
                        if result.committed() {
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed();

    let transactions = clients * txns_per_client;
    assert!(
        committed * 10 >= transactions * 9,
        "{mode:?} at {clients} clients: only {committed}/{transactions} committed"
    );
    LevelResult {
        clients,
        transactions,
        txn_per_sec: committed as f64 / elapsed.as_secs_f64(),
        committed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_override = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // (clients, txns_per_client). Quick mode keeps the same client levels
    // (the regression gate matches metrics by dotted path, so the level
    // structure must be identical to the committed baseline) but runs fewer
    // transactions per client.
    let levels: &[(usize, usize)] = if quick {
        &[(64, 8), (256, 3), (1024, 1)]
    } else {
        &[(64, 32), (256, 12), (1024, 4)]
    };

    println!("commit-pipeline throughput (3 sites, memory engine, one increment+commit per txn)\n");
    println!(
        "{:>8} {:>8} {:>22} {:>22} {:>9}",
        "clients", "txns", "threads txn/s", "reactor txn/s", "speedup"
    );

    let mut rows = Vec::new();
    for &(clients, txns_per_client) in levels {
        let threads = run_level(CoordinatorMode::Threads, clients, txns_per_client);
        let reactor = run_level(CoordinatorMode::Reactor, clients, txns_per_client);
        let speedup = reactor.txn_per_sec / threads.txn_per_sec;
        println!(
            "{:>8} {:>8} {:>14.0} ({:>4}c) {:>14.0} ({:>4}c) {:>8.2}x",
            clients,
            threads.transactions,
            threads.txn_per_sec,
            threads.committed,
            reactor.txn_per_sec,
            reactor.committed,
            speedup
        );
        rows.push((threads, reactor, speedup));
    }

    let level_json: Vec<String> = rows
        .iter()
        .map(|(threads, reactor, speedup)| {
            format!(
                "    {{\"clients\": {}, \"transactions\": {}, \"threads_txn_per_sec\": {:.0}, \"reactor_txn_per_sec\": {:.0}, \"speedup\": {:.2}}}",
                threads.clients, threads.transactions, threads.txn_per_sec, reactor.txn_per_sec, speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\"sites\": 3, \"replication_degree\": 3, \"engine\": \"memory\", \"ops_per_txn\": 1, \"quick\": {quick}}},\n  \"levels\": [\n{}\n  ]\n}}\n",
        level_json.join(",\n")
    );

    if let Some(path) = out_override {
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\nresults written to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if quick {
        // Smoke runs (CI) must not clobber the committed full-run numbers.
        println!("\nquick run: BENCH_pipeline.json left untouched");
        return;
    }
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nresults written to BENCH_pipeline.json"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
