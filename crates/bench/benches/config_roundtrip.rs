//! Experiment FIG3/4/A-1 — the configuration surface.
//!
//! Figures 3, 4 and A-1 of the paper are the login/protocol/replication
//! configuration panels, and Section 4.2 notes that "the configuration data
//! can be saved for reuse in another session". The functional reproduction
//! is the [`rainbow_control::SessionConfig`] save/load round trip; this
//! bench measures it (serialize + parse) for classroom-scale and larger
//! configurations so the cost of the feature is documented.

use criterion::{criterion_group, criterion_main, Criterion};
use rainbow_common::config::DatabaseSchema;
use rainbow_common::protocol::ProtocolStack;
use rainbow_control::SessionConfig;
use std::time::Duration;

fn config_with(items: usize, sites: usize) -> SessionConfig {
    let mut config = SessionConfig::default();
    config.distribution = rainbow_common::config::DistributionSchema::one_site_per_host(sites);
    config.database =
        DatabaseSchema::uniform(items, 100, &config.distribution.site_ids(), 3.min(sites))
            .expect("schema");
    config.stack = ProtocolStack::rainbow_default();
    config
}

fn bench_roundtrip(c: &mut Criterion) {
    for (label, items, sites) in [
        ("classroom_16items_4sites", 16, 4),
        ("large_1024items_16sites", 1024, 16),
    ] {
        let config = config_with(items, sites);
        c.bench_function(&format!("config_roundtrip/{label}"), |b| {
            b.iter(|| {
                let json = config.to_json().unwrap();
                let back = SessionConfig::from_json(&json).unwrap();
                assert_eq!(back.database.len(), config.database.len());
                back
            });
        });
    }
}

criterion_group!(
    name = config;
    config = Criterion::default().sample_size(30).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_roundtrip
);
criterion_main!(config);
