//! Experiment E-QC — quorum consensus message traffic vs ROWA.
//!
//! Section 3 of the paper cites the quorum-consensus behaviour and message
//! traffic study (reference [3], the SETH system) as the flagship research
//! use of Rainbow. This bench regenerates that study's shape: total messages
//! and messages per transaction for QC vs ROWA as the replication degree and
//! the read/write mix vary.
//!
//! Expected shape: ROWA reads are cheap (one copy) so ROWA wins on
//! read-heavy workloads and low replication degrees; QC's read cost grows
//! with the quorum size, but its write quorums are smaller than ROWA's
//! write-all, so the gap narrows (and message *availability* cost reverses —
//! see the failures experiment) as the update fraction and degree grow.

use rainbow_bench::{run_experiment, stack, standard_table, RunSpec};
use rainbow_common::protocol::{AcpKind, CcpKind, RcpKind};
use rainbow_control::ExperimentTable;
use rainbow_wlg::WorkloadProfile;

fn main() {
    println!("Experiment E-QC: quorum message traffic (QC vs ROWA)");
    println!("paper reference: Section 3, reference [3]\n");

    let mut summary = ExperimentTable::new(
        "messages per transaction: QC vs ROWA",
        &[
            "profile",
            "degree",
            "ROWA msgs/txn",
            "QC msgs/txn",
            "winner",
        ],
    );
    let mut detail_points = Vec::new();

    for profile in [WorkloadProfile::ReadHeavy, WorkloadProfile::WriteHeavy] {
        for degree in [1usize, 3, 5, 7] {
            let sites = degree.max(3).max(degree);
            let base = RunSpec::baseline("")
                .with_sites(sites.max(3))
                .with_items(12)
                .with_replication(degree)
                .with_transactions(120)
                .with_profile(profile)
                .with_mpl(8);

            let rowa = run_experiment(
                &base
                    .clone()
                    .with_stack(stack(
                        RcpKind::Rowa,
                        CcpKind::TwoPhaseLocking,
                        AcpKind::TwoPhaseCommit,
                    ))
                    .with_seed(degree as u64),
            );
            let qc = run_experiment(
                &base
                    .with_stack(stack(
                        RcpKind::QuorumConsensus,
                        CcpKind::TwoPhaseLocking,
                        AcpKind::TwoPhaseCommit,
                    ))
                    .with_seed(degree as u64),
            );
            let winner = if rowa.messages_per_txn <= qc.messages_per_txn {
                "ROWA"
            } else {
                "QC"
            };
            summary.row(&[
                profile.name().to_string(),
                degree.to_string(),
                format!("{:.1}", rowa.messages_per_txn),
                format!("{:.1}", qc.messages_per_txn),
                winner.to_string(),
            ]);
            let mut rowa = rowa;
            rowa.label = format!("{} d={degree} ROWA", profile.name());
            let mut qc = qc;
            qc.label = format!("{} d={degree} QC", profile.name());
            detail_points.push(rowa);
            detail_points.push(qc);
        }
    }

    println!("{}", summary.render());
    println!(
        "{}",
        standard_table("full statistics per configuration", &detail_points).render()
    );
}
