//! Experiment FIG5 — the transaction-processing output panel.
//!
//! Reproduces the *function* of Figure 5 of the paper: after running a
//! default Rainbow configuration (4 sites, 16 items × 3 replicas, QC + 2PL +
//! 2PC) under the simulated workload generator, print every statistic the
//! paper's output panel shows (commits, aborts by cause, commit rate,
//! messages per time unit, throughput, response time, orphans, round trips,
//! load balance).

use rainbow_bench::{run_experiment, RunSpec};
use rainbow_control::render_stats_panel;
use rainbow_wlg::WorkloadProfile;

fn main() {
    println!("Experiment FIG5: transaction processing output panel (default configuration)");
    println!("paper reference: Figure 5 and the Section 3 statistics list\n");

    let spec = RunSpec::baseline("QC+2PL+2PC default")
        .with_transactions(200)
        .with_profile(WorkloadProfile::ReadHeavy);
    let point = run_experiment(&spec);
    println!(
        "{}",
        render_stats_panel("default Rainbow session", &point.stats)
    );

    // A second panel under the contention workload, which is what makes the
    // abort-by-cause breakdown non-trivial.
    let contended = RunSpec::baseline("QC+2PL+2PC hot-spot")
        .with_transactions(200)
        .with_profile(WorkloadProfile::HotSpotContention)
        .with_mpl(16);
    let point = run_experiment(&contended);
    println!(
        "{}",
        render_stats_panel("hot-spot contention session", &point.stats)
    );
}
