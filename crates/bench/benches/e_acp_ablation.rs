//! Experiment E-ACP — 2PC vs 3PC: message overhead and latency per commit.
//!
//! Section 5 of the paper proposes "replacing two phase commit by
//! three-phase commit" as a term project; this ablation quantifies what the
//! student should observe: 3PC's extra pre-commit round costs one more
//! message round trip per participant and correspondingly higher response
//! time, in exchange for non-blocking termination (exercised in the
//! failures integration tests).
//!
//! A second table isolates the commit-protocol traffic by message kind so
//! the extra PRE-COMMIT / PRE-COMMIT-ACK round is directly visible.

use rainbow_bench::{run_experiment, stack, standard_table, RunSpec};
use rainbow_common::protocol::{AcpKind, CcpKind, RcpKind};
use rainbow_control::ExperimentTable;
use rainbow_wlg::WorkloadProfile;

fn main() {
    println!("Experiment E-ACP: 2PC vs 3PC ablation");
    println!("paper reference: Section 5 (term projects)\n");

    let mut summary = ExperimentTable::new(
        "2PC vs 3PC (4 sites, write-heavy, degree 3)",
        &["ACP", "commit%", "msgs/txn", "rt-mean ms", "rt-p95 ms"],
    );
    let mut kinds = ExperimentTable::new(
        "commit-protocol messages by kind",
        &[
            "ACP",
            "PREPARE",
            "VOTE",
            "PRECOMMIT",
            "PRECOMMIT_ACK",
            "DECISION",
            "ACK",
        ],
    );
    let mut detail = Vec::new();

    for acp in [AcpKind::TwoPhaseCommit, AcpKind::ThreePhaseCommit] {
        let spec = RunSpec::baseline("")
            .with_sites(4)
            .with_items(12)
            .with_replication(3)
            .with_profile(WorkloadProfile::WriteHeavy)
            .with_transactions(150)
            .with_mpl(8)
            .with_seed(11)
            .with_stack(stack(
                RcpKind::QuorumConsensus,
                CcpKind::TwoPhaseLocking,
                acp,
            ));
        let mut point = run_experiment(&spec);
        point.label = acp.to_string();
        summary.row(&[
            acp.to_string(),
            format!("{:.1}", point.commit_rate * 100.0),
            format!("{:.1}", point.messages_per_txn),
            format!("{:.2}", point.mean_response_ms),
            format!("{:.2}", point.p95_response_ms),
        ]);
        kinds.row(&[
            acp.to_string(),
            point.stats.messages.kind("ACP_PREPARE").to_string(),
            point.stats.messages.kind("ACP_VOTE").to_string(),
            point.stats.messages.kind("ACP_PRECOMMIT").to_string(),
            point.stats.messages.kind("ACP_PRECOMMIT_ACK").to_string(),
            point.stats.messages.kind("ACP_DECISION").to_string(),
            point.stats.messages.kind("ACP_ACK").to_string(),
        ]);
        detail.push(point);
    }

    println!("{}", summary.render());
    println!("{}", kinds.render());
    println!("{}", standard_table("full statistics", &detail).render());
}
