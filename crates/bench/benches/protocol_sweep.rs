//! Experiment E-SWEEP — the replication-control protocol matrix.
//!
//! Runs the full (protocol × workload profile × fault scenario) grid over
//! all five replication protocols (ROWA, QC, AC, TQ, PC) and the standard
//! fault scenarios (healthy, one site down, partitioned minority), printing
//! one table row per cell and writing the machine-readable results to
//! `BENCH_protocols.json` at the repo root, with the per-phase latency
//! breakdown of every cell (lock-wait, quorum-read, prepare, commit-apply,
//! wal-force, queue-delay) in `BENCH_phases.json` alongside it.
//!
//! Expected shape of the results:
//!
//! * **healthy** — everyone commits; ROWA/AC/TQ/PC reads are one-copy cheap,
//!   QC pays quorum-sized reads, ROWA/AC pay write-all.
//! * **one site down** — ROWA writes block (every copy required) and TQ
//!   writes block when the victim is the tree root; QC, AC and PC keep
//!   committing.
//! * **partitioned minority** — QC keeps committing from the majority side;
//!   the all-available protocols (AC, PC) and ROWA/TQ time out on writes
//!   because the partitioned holders are alive-but-unreachable, and
//!   transactions homed at isolated sites become orphans.
//!
//! Run with: `cargo bench --bench protocol_sweep` (add `-- --quick` for the
//! CI smoke run; quick runs still cover the full grid with fewer
//! transactions per cell).

use rainbow_control::{
    phases_to_json, run_protocol_sweep, sweep_table, sweep_to_json, FaultScenario, SweepConfig,
};
use rainbow_wlg::WorkloadProfile;

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");

    let config = SweepConfig {
        // The protocol and fault axes are pinned explicitly: quick or not,
        // this bench must cover all five RCPs against the one-site-down and
        // minority-partition scenarios (the acceptance grid).
        protocols: rainbow_common::protocol::RcpKind::ALL.to_vec(),
        faults: vec![
            FaultScenario::Healthy,
            FaultScenario::SiteDown { count: 1 },
            FaultScenario::MinorityPartition,
        ],
        profiles: if quick {
            vec![WorkloadProfile::WriteHeavy]
        } else {
            vec![
                WorkloadProfile::ReadHeavy,
                WorkloadProfile::WriteHeavy,
                WorkloadProfile::HotSpotContention,
            ]
        },
        transactions: if quick { 16 } else { 80 },
        ..SweepConfig::default()
    };

    println!("Experiment E-SWEEP: replication protocol matrix under faults");
    println!(
        "grid: {} protocols x {} workloads x {} fault scenarios, {} txns/cell{}\n",
        config.protocols.len(),
        config.profiles.len(),
        config.faults.len(),
        config.transactions,
        if quick { " (quick)" } else { "" }
    );
    let report = run_protocol_sweep(&config).expect("protocol sweep failed");
    println!(
        "{}",
        sweep_table("protocol x workload x fault grid", &report).render()
    );

    let json = sweep_to_json(&report).expect("serialize sweep report");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_protocols.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("results written to BENCH_protocols.json"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }

    let phases_json = phases_to_json(&report).expect("serialize phase breakdown");
    let phases_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phases.json");
    match std::fs::write(phases_out, &phases_json) {
        Ok(()) => println!("phase breakdown written to BENCH_phases.json"),
        Err(e) => eprintln!("could not write {phases_out}: {e}"),
    }
}
