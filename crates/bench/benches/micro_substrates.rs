//! Criterion micro-benchmarks of the substrates every experiment rests on:
//! the lock manager, the timestamp-ordering tables, the quorum collector,
//! the write-ahead log and the network simulator. These are engineering
//! benchmarks (not paper artefacts); they guard against substrate
//! regressions that would distort the experiment results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rainbow_cc::{CcProtocol, LockManager, LockMode, TimestampOrdering, TxnContext};
use rainbow_common::config::ItemPlacement;
use rainbow_common::protocol::DeadlockPolicy;
use rainbow_common::{ItemId, SiteId, Timestamp, TxnId, Value, Version};
use rainbow_net::{NetMessage, NetworkConfig, NodeId, SimNetwork};
use rainbow_replication::{QuorumConsensus, QuorumResponse, ReplicationControl};
use rainbow_storage::{LogRecord, WriteAheadLog};
use std::time::Duration;

fn bench_lock_manager(c: &mut Criterion) {
    c.bench_function("lock_manager/acquire_release_exclusive", |b| {
        let lm = LockManager::new(DeadlockPolicy::WaitDie, Duration::from_millis(10));
        let item = ItemId::new("x");
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let txn = TxnId::new(SiteId(0), seq);
            lm.acquire(txn, Timestamp::new(seq, 0), &item, LockMode::Exclusive)
                .unwrap();
            lm.release_all(txn);
        });
    });

    c.bench_function("lock_manager/shared_readers_100_items", |b| {
        let lm = LockManager::new(DeadlockPolicy::WaitForGraph, Duration::from_millis(10));
        let items: Vec<ItemId> = (0..100).map(|i| ItemId::new(format!("x{i}"))).collect();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let txn = TxnId::new(SiteId(0), seq);
            for item in &items {
                lm.acquire(txn, Timestamp::new(seq, 0), item, LockMode::Shared)
                    .unwrap();
            }
            lm.release_all(txn);
        });
    });
}

fn bench_tso(c: &mut Criterion) {
    c.bench_function("tso/read_prewrite_commit", |b| {
        let tso = TimestampOrdering::new();
        let item = ItemId::new("x");
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let ctx = TxnContext::new(TxnId::new(SiteId(0), seq), Timestamp::new(seq, 0));
            let current = (Value::Int(0), Version(0));
            assert!(tso.read(&ctx, &item, current.clone()).is_granted());
            assert!(tso.prewrite(&ctx, &item, current).is_granted());
            tso.commit(
                &ctx,
                &[(item.clone(), Value::Int(seq as i64), Version(seq))],
            );
        });
    });
}

fn bench_quorum(c: &mut Criterion) {
    c.bench_function("quorum/plan_and_collect_degree5", |b| {
        let rcp = QuorumConsensus::new();
        let placement = ItemPlacement::majority((0..5).map(SiteId).collect::<Vec<_>>());
        let item = ItemId::new("x");
        b.iter(|| {
            let plan = rcp.plan_read(&item, &placement, Some(SiteId(0)), &[]);
            let mut collector = plan.collector();
            for site in 0..5u32 {
                collector.record_response(QuorumResponse {
                    site: SiteId(site),
                    version: Version(u64::from(site)),
                    value: Some(Value::Int(i64::from(site))),
                });
                if collector.is_assembled() {
                    break;
                }
            }
            assert!(collector.is_assembled());
            collector.latest_value().unwrap()
        });
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("wal/append_forced_commit_record", |b| {
        let mut seq = 0u64;
        b.iter_batched(
            WriteAheadLog::new,
            |log| {
                seq += 1;
                log.append_forced(LogRecord::Commit {
                    txn: TxnId::new(SiteId(0), seq),
                    writes: vec![(ItemId::new("x"), Value::Int(1), Version(seq))],
                });
            },
            BatchSize::SmallInput,
        );
    });
}

#[derive(Debug, Clone)]
struct Ping(#[allow(dead_code)] u64);

impl NetMessage for Ping {
    fn kind(&self) -> &'static str {
        "PING"
    }
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network/send_recv_zero_latency", |b| {
        let net = SimNetwork::<Ping>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let bnode = NodeId::site(1);
        net.register(a);
        let rx = net.register(bnode);
        let handle = net.handle();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            handle.send(a, bnode, Ping(seq)).unwrap();
            rx.recv_timeout(Duration::from_millis(100)).unwrap()
        });
    });
}

criterion_group!(
    name = substrates;
    config = Criterion::default().sample_size(30).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_lock_manager, bench_tso, bench_quorum, bench_wal, bench_network
);
criterion_main!(substrates);
