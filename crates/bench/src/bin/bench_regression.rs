//! The CI perf-regression gate: compares freshly measured benchmark JSON
//! against the committed `BENCH_*.json` baselines and exits non-zero when
//! any higher-is-better metric dropped beyond tolerance.
//!
//! Usage:
//!
//! ```text
//! bench-regression [--tolerance 0.2] --pair BASELINE CURRENT [--pair …]
//! ```
//!
//! Each `--pair` names one committed baseline file and the corresponding
//! fresh measurement (produced with the benches' `--out` flag). Every pair
//! is compared with [`rainbow_bench::regression::compare`]; the process
//! exits 1 if any pair regresses, printing a per-metric table either way.

use rainbow_bench::regression;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: bench-regression [--tolerance FRACTION] --pair BASELINE CURRENT [--pair BASELINE CURRENT ...]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.20f64;
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                let Some(raw) = args.get(i + 1) else { usage() };
                match raw.parse::<f64>() {
                    Ok(t) if (0.0..1.0).contains(&t) => tolerance = t,
                    _ => {
                        eprintln!("bench-regression: tolerance must be a fraction in [0, 1)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--pair" => {
                let (Some(baseline), Some(current)) = (args.get(i + 1), args.get(i + 2)) else {
                    usage()
                };
                pairs.push((baseline.clone(), current.clone()));
                i += 3;
            }
            _ => usage(),
        }
    }
    if pairs.is_empty() {
        usage();
    }

    let mut failed = false;
    for (baseline_path, current_path) in &pairs {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench-regression: cannot read {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let current = match std::fs::read_to_string(current_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench-regression: cannot read {current_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = match regression::compare(&baseline, &current, tolerance) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench-regression: {baseline_path} vs {current_path}: {e}");
                return ExitCode::from(2);
            }
        };

        println!(
            "{baseline_path} vs {current_path} (tolerance {:.0}%):",
            tolerance * 100.0
        );
        for delta in &report.compared {
            let flag = if delta.regressed(tolerance) {
                "  REGRESSED"
            } else {
                ""
            };
            println!(
                "  {:<46} {:>14.2} -> {:>14.2}  ({:>6.1}%){flag}",
                delta.metric,
                delta.baseline,
                delta.current,
                delta.ratio() * 100.0
            );
        }
        for metric in &report.missing {
            println!("  {metric:<46} MISSING from current run");
        }
        if report.passed() {
            println!("  PASS ({} metrics)\n", report.compared.len());
        } else {
            println!(
                "  FAIL ({} regressed, {} missing)\n",
                report.regressions.len(),
                report.missing.len()
            );
            failed = true;
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
