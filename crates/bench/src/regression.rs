//! Tolerance-aware comparison of benchmark result files — the library
//! behind the `bench-regression` CI gate.
//!
//! The committed `BENCH_*.json` files at the repo root are the performance
//! contract of this tree: they hold the throughput and speedup numbers the
//! current implementation is known to reach. The gate re-measures a fresh
//! JSON on the PR head (`cargo bench --bench pipeline -- --quick --out …`)
//! and fails the build when any **higher-is-better** metric dropped by
//! more than the tolerance (20% by default — wide enough to absorb CI
//! scheduler noise, narrow enough to catch a real pipeline regression).
//!
//! Metric selection is by key shape, so new benchmarks join the gate by
//! just writing JSON: any numeric leaf whose dotted path ends in
//! `*_per_sec` (absolute throughput) or `speedup` (a within-run ratio,
//! machine-independent by construction) is compared; latency-style leaves
//! (`*_us_per_txn`, `*_ns_per_op`) are reported but never gated, since
//! lower is better there and they are implied by the throughputs anyway.
//! A metric present in the baseline but missing from the current run fails
//! the gate too — a rename must not silently disable its check.

use serde::{Content, DeError, Deserialize};
use std::collections::BTreeMap;

/// A parsed JSON tree, kept as the shim's raw [`Content`] so benchmark
/// files of any shape can be flattened without a schema.
struct RawJson(Content);

impl Deserialize for RawJson {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(RawJson(content.clone()))
    }
}

/// One metric compared between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted path of the numeric leaf, e.g. `levels.2.reactor_txn_per_sec`.
    pub metric: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub current: f64,
}

impl MetricDelta {
    /// current / baseline; > 1 is an improvement.
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            f64::INFINITY
        } else {
            self.current / self.baseline
        }
    }

    /// True when the drop exceeds `tolerance` (0.2 = fail below 80% of
    /// the baseline).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.ratio() < 1.0 - tolerance
    }
}

/// The outcome of comparing one baseline file against one current file.
#[derive(Debug, Clone, Default)]
pub struct RegressionReport {
    /// Every gated metric found in both files.
    pub compared: Vec<MetricDelta>,
    /// The subset of [`RegressionReport::compared`] that dropped beyond
    /// tolerance.
    pub regressions: Vec<MetricDelta>,
    /// Gated metrics present in the baseline but absent from the current
    /// run (also a failure: a rename must not disable its check).
    pub missing: Vec<String>,
}

impl RegressionReport {
    /// True when no gated metric regressed or went missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// True for dotted paths whose value is gated (higher is better).
fn is_gated(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.ends_with("per_sec") || leaf == "speedup"
}

fn flatten(content: &Content, prefix: &str, out: &mut BTreeMap<String, f64>) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match content {
        Content::I64(v) => {
            out.insert(prefix.to_string(), *v as f64);
        }
        Content::U64(v) => {
            out.insert(prefix.to_string(), *v as f64);
        }
        Content::F64(v) => {
            out.insert(prefix.to_string(), *v);
        }
        Content::Map(entries) => {
            for (key, value) in entries {
                flatten(value, &join(key), out);
            }
        }
        Content::Seq(items) => {
            for (index, value) in items.iter().enumerate() {
                flatten(value, &join(&index.to_string()), out);
            }
        }
        Content::Null | Content::Bool(_) | Content::Str(_) => {}
    }
}

/// Flattens a benchmark JSON file into dotted-path → numeric-leaf pairs
/// (every number, gated or not — callers filter).
pub fn numeric_leaves(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let raw: RawJson =
        serde_json::from_str(json).map_err(|e| format!("invalid benchmark JSON: {e}"))?;
    let mut out = BTreeMap::new();
    flatten(&raw.0, "", &mut out);
    Ok(out)
}

/// Compares two benchmark JSON documents, gating every higher-is-better
/// metric at the given drop tolerance.
pub fn compare(
    baseline_json: &str,
    current_json: &str,
    tolerance: f64,
) -> Result<RegressionReport, String> {
    let baseline = numeric_leaves(baseline_json)?;
    let current = numeric_leaves(current_json)?;
    let mut report = RegressionReport::default();
    for (metric, baseline_value) in baseline {
        if !is_gated(&metric) {
            continue;
        }
        match current.get(&metric) {
            None => report.missing.push(metric),
            Some(current_value) => {
                let delta = MetricDelta {
                    metric,
                    baseline: baseline_value,
                    current: *current_value,
                };
                if delta.regressed(tolerance) {
                    report.regressions.push(delta.clone());
                }
                report.compared.push(delta);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "config": {"threads": 4, "quick": false},
        "lock": {"baseline_ops_per_sec": 1000.0, "speedup": 2.0},
        "levels": [
            {"clients": 64, "reactor_txn_per_sec": 500.0, "us_per_txn": 2000.0}
        ]
    }"#;

    #[test]
    fn gates_per_sec_and_speedup_leaves_only() {
        assert!(is_gated("lock.baseline_ops_per_sec"));
        assert!(is_gated("levels.0.reactor_txn_per_sec"));
        assert!(is_gated("quorum.speedup"));
        assert!(!is_gated("levels.0.us_per_txn"));
        assert!(!is_gated("config.threads"));
        assert!(!is_gated("micro.ns_per_op"));
    }

    #[test]
    fn identical_files_pass() {
        let report = compare(BASELINE, BASELINE, 0.2).unwrap();
        assert!(report.passed());
        assert_eq!(report.compared.len(), 3);
        // Config counters and latency leaves are not gated.
        assert!(report.compared.iter().all(|d| is_gated(&d.metric)));
    }

    #[test]
    fn a_drop_beyond_tolerance_fails() {
        let current = BASELINE.replace("500.0", "390.0"); // -22%
        let report = compare(BASELINE, &current, 0.2).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "levels.0.reactor_txn_per_sec");
    }

    #[test]
    fn a_drop_within_tolerance_passes() {
        let current = BASELINE.replace("500.0", "410.0"); // -18%
        let report = compare(BASELINE, &current, 0.2).unwrap();
        assert!(report.passed(), "regressions: {:?}", report.regressions);
    }

    #[test]
    fn latency_leaves_are_never_gated_even_when_worse() {
        let current = BASELINE.replace("2000.0", "9000.0");
        let report = compare(BASELINE, &current, 0.2).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn a_missing_gated_metric_fails() {
        let current = BASELINE.replace("reactor_txn_per_sec", "renamed_txn_rate");
        let report = compare(BASELINE, &current, 0.2).unwrap();
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["levels.0.reactor_txn_per_sec"]);
    }

    #[test]
    fn improvements_always_pass() {
        let current = BASELINE.replace("500.0", "5000.0");
        let report = compare(BASELINE, &current, 0.2).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(compare("{", BASELINE, 0.2).is_err());
        assert!(compare(BASELINE, "not json", 0.2).is_err());
    }

    #[test]
    fn zero_baseline_never_divides_by_zero() {
        let baseline = r#"{"x_per_sec": 0.0}"#;
        let current = r#"{"x_per_sec": 10.0}"#;
        let report = compare(baseline, current, 0.2).unwrap();
        assert!(report.passed());
    }
}
