//! Message-traffic accounting.
//!
//! Every message that enters the simulator is counted here: totals, per
//! message kind (e.g. `"2PC_PREPARE"`, `"QC_READ_REQ"`), per directed link,
//! plus drop counts. The quorum message-traffic experiment (DESIGN.md E-QC)
//! and the paper's "total number of messages generated per time unit"
//! statistic read these counters.

use crate::node::NodeId;
use parking_lot::Mutex;
use rainbow_common::stats::MessageStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe message counters. Cloning the handle (via `Arc`)
/// shares the same underlying counters.
#[derive(Debug, Default)]
pub struct NetworkCounters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped_loss: AtomicU64,
    dropped_partition: AtomicU64,
    dropped_crash: AtomicU64,
    bytes: AtomicU64,
    round_trips: AtomicU64,
    by_kind: Mutex<BTreeMap<String, u64>>,
    by_link: Mutex<BTreeMap<(NodeId, NodeId), u64>>,
}

impl NetworkCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        NetworkCounters::default()
    }

    /// Records a message handed to the simulator.
    pub fn record_sent(&self, from: NodeId, to: NodeId, kind: &str, bytes: usize) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        *self.by_kind.lock().entry(kind.to_owned()).or_insert(0) += 1;
        *self.by_link.lock().entry((from, to)).or_insert(0) += 1;
    }

    /// Records a successful delivery.
    pub fn record_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message dropped by random loss.
    pub fn record_dropped_loss(&self) {
        self.dropped_loss.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message dropped because sender and receiver are in
    /// different partitions.
    pub fn record_dropped_partition(&self) {
        self.dropped_partition.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message dropped because the sender or receiver is crashed.
    pub fn record_dropped_crash(&self) {
        self.dropped_crash.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request/response round trip (reported by the
    /// RPC layer in `rainbow-core`).
    pub fn record_round_trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Total messages sent so far.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Total messages dropped so far (all reasons).
    pub fn dropped(&self) -> u64 {
        self.dropped_loss.load(Ordering::Relaxed)
            + self.dropped_partition.load(Ordering::Relaxed)
            + self.dropped_crash.load(Ordering::Relaxed)
    }

    /// Messages of one kind sent so far.
    pub fn kind(&self, kind: &str) -> u64 {
        self.by_kind.lock().get(kind).copied().unwrap_or(0)
    }

    /// Messages sent on one directed link so far.
    pub fn link(&self, from: NodeId, to: NodeId) -> u64 {
        self.by_link.lock().get(&(from, to)).copied().unwrap_or(0)
    }

    /// Completed round trips so far.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Snapshot as the common [`MessageStats`] type used by the progress
    /// monitor.
    pub fn snapshot(&self) -> MessageStats {
        MessageStats {
            sent: self.sent(),
            delivered: self.delivered(),
            dropped: self.dropped(),
            bytes: self.bytes.load(Ordering::Relaxed),
            by_kind: self.by_kind.lock().clone(),
            round_trips: self.round_trips(),
        }
    }

    /// Difference between this snapshot and an earlier one, used by windowed
    /// experiments ("messages per time unit").
    pub fn delta_since(&self, earlier: &MessageStats) -> MessageStats {
        let now = self.snapshot();
        let mut by_kind = BTreeMap::new();
        for (kind, count) in &now.by_kind {
            let before = earlier.by_kind.get(kind).copied().unwrap_or(0);
            if *count > before {
                by_kind.insert(kind.clone(), count - before);
            }
        }
        MessageStats {
            sent: now.sent.saturating_sub(earlier.sent),
            delivered: now.delivered.saturating_sub(earlier.delivered),
            dropped: now.dropped.saturating_sub(earlier.dropped),
            bytes: now.bytes.saturating_sub(earlier.bytes),
            by_kind,
            round_trips: now.round_trips.saturating_sub(earlier.round_trips),
        }
    }

    /// Resets everything to zero (used between experiment repetitions).
    pub fn reset(&self) {
        self.sent.store(0, Ordering::Relaxed);
        self.delivered.store(0, Ordering::Relaxed);
        self.dropped_loss.store(0, Ordering::Relaxed);
        self.dropped_partition.store(0, Ordering::Relaxed);
        self.dropped_crash.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.round_trips.store(0, Ordering::Relaxed);
        self.by_kind.lock().clear();
        self.by_link.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = NetworkCounters::new();
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        c.record_sent(a, b, "2PC_PREPARE", 100);
        c.record_sent(a, b, "2PC_PREPARE", 100);
        c.record_sent(b, a, "2PC_VOTE", 20);
        c.record_delivered();
        c.record_delivered();
        c.record_dropped_loss();
        c.record_round_trip();

        assert_eq!(c.sent(), 3);
        assert_eq!(c.delivered(), 2);
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.kind("2PC_PREPARE"), 2);
        assert_eq!(c.kind("2PC_VOTE"), 1);
        assert_eq!(c.kind("missing"), 0);
        assert_eq!(c.link(a, b), 2);
        assert_eq!(c.link(b, a), 1);
        assert_eq!(c.round_trips(), 1);

        let snap = c.snapshot();
        assert_eq!(snap.sent, 3);
        assert_eq!(snap.bytes, 220);
        assert_eq!(snap.kind("2PC_PREPARE"), 2);
    }

    #[test]
    fn drop_reasons_all_count_toward_dropped() {
        let c = NetworkCounters::new();
        c.record_dropped_loss();
        c.record_dropped_partition();
        c.record_dropped_crash();
        assert_eq!(c.dropped(), 3);
    }

    #[test]
    fn delta_since_reports_only_new_traffic() {
        let c = NetworkCounters::new();
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        c.record_sent(a, b, "QC_READ", 10);
        let before = c.snapshot();
        c.record_sent(a, b, "QC_READ", 10);
        c.record_sent(a, b, "QC_WRITE", 10);
        c.record_delivered();
        let delta = c.delta_since(&before);
        assert_eq!(delta.sent, 2);
        assert_eq!(delta.delivered, 1);
        assert_eq!(delta.kind("QC_READ"), 1);
        assert_eq!(delta.kind("QC_WRITE"), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = NetworkCounters::new();
        c.record_sent(NodeId::site(0), NodeId::site(1), "X", 5);
        c.record_delivered();
        c.reset();
        assert_eq!(c.sent(), 0);
        assert_eq!(c.delivered(), 0);
        assert_eq!(c.kind("X"), 0);
        assert_eq!(c.snapshot().bytes, 0);
    }
}
