//! # rainbow-net
//!
//! The network simulator and fault/recovery injector of the Rainbow
//! reproduction.
//!
//! The paper lists, among Rainbow's experimentation facilities, "a network
//! simulator and fault/recovery injector" that the GUI configures before
//! anything else. This crate provides that substrate:
//!
//! * [`config`] — latency models (constant, uniform, normal), per-link loss
//!   probabilities and per-pair overrides;
//! * [`node`] — the identity of communicating processes (Rainbow sites, the
//!   name server, workload clients);
//! * [`network`] — [`network::SimNetwork`], an in-process message-passing
//!   fabric with a background delivery thread that applies latency, loss,
//!   partitions and crash faults to every message;
//! * [`fault`] — the fault injector handle used by experiments and the
//!   Session API to crash/recover sites and create/heal partitions while a
//!   workload is running;
//! * [`counters`] — message-traffic accounting (total, per kind, per link)
//!   feeding the paper's "total number of messages generated per time unit"
//!   and the quorum message-traffic experiments.
//!
//! The simulator is deterministic given a seed for its random latency/loss
//! draws, which keeps experiments repeatable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod counters;
pub mod fault;
pub mod network;
pub mod node;

pub use batch::{FlushStats, Outbox};
pub use config::{LatencyModel, LinkConfig, LinkOverride, NetworkConfig};
pub use counters::NetworkCounters;
pub use fault::FaultController;
pub use network::{Envelope, NetHandle, NetMessage, SimNetwork};
pub use node::NodeId;
