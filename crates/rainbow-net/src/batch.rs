//! Per-tick message coalescing for event-loop senders.
//!
//! A reactor tick can produce many protocol messages bound for the same
//! site — quorum requests for several transactions, a handful of commit
//! decisions, prepared-write fan-outs. Sending each one separately pays a
//! full trip through the network simulator (scheduling, latency draw,
//! counter bookkeeping) per message. An [`Outbox`] instead queues messages
//! per destination during the tick and flushes once at the end: a lone
//! message is sent as itself, while two or more for one destination are
//! wrapped into a single batch envelope by a caller-supplied constructor
//! (the core's `Msg::Batch`).
//!
//! The outbox is deliberately generic over the message type — this crate
//! knows nothing about the Rainbow protocol — and deliberately *not* used
//! for client-bound replies, which are latency-sensitive one-offs.

use crate::network::{NetHandle, NetMessage};
use crate::node::NodeId;

/// Statistics of one [`Outbox::flush`], fed to the reactor's batch-size
/// histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Envelopes actually handed to the network.
    pub envelopes: usize,
    /// Logical messages those envelopes carried.
    pub messages: usize,
    /// The largest single batch (1 when nothing was coalesced).
    pub largest_batch: usize,
}

/// A per-destination queue of outbound messages, flushed once per tick.
#[derive(Debug)]
pub struct Outbox<M> {
    // A Vec keyed by first-push order: a tick talks to a handful of sites,
    // so a linear scan beats a map — and flush order stays deterministic.
    queued: Vec<(NodeId, Vec<M>)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { queued: Vec::new() }
    }
}

impl<M: NetMessage> Outbox<M> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues `msg` for `to`; it travels at the next [`Outbox::flush`].
    pub fn push(&mut self, to: NodeId, msg: M) {
        match self.queued.iter_mut().find(|(node, _)| *node == to) {
            Some((_, msgs)) => msgs.push(msg),
            None => self.queued.push((to, vec![msg])),
        }
    }

    /// Number of queued logical messages.
    pub fn len(&self) -> usize {
        self.queued.iter().map(|(_, msgs)| msgs.len()).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    /// Sends everything queued: one envelope per destination, wrapping
    /// multi-message groups with `wrap` (single messages travel as
    /// themselves — a batch of one would only add header bytes). Send
    /// errors are ignored, matching the sites' fire-and-forget semantics:
    /// an unreachable destination is indistinguishable from a lost
    /// message, and the protocols' timeouts handle both.
    pub fn flush(
        &mut self,
        net: &NetHandle<M>,
        from: NodeId,
        wrap: impl Fn(Vec<M>) -> M,
    ) -> FlushStats {
        let mut stats = FlushStats::default();
        for (to, msgs) in self.queued.drain(..) {
            stats.envelopes += 1;
            stats.messages += msgs.len();
            stats.largest_batch = stats.largest_batch.max(msgs.len());
            let payload = if msgs.len() == 1 {
                msgs.into_iter().next().expect("group is non-empty")
            } else {
                wrap(msgs)
            };
            let _ = net.send(from, to, payload);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::network::SimNetwork;
    use std::time::Duration;

    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        One(u32),
        Many(Vec<TestMsg>),
    }

    impl NetMessage for TestMsg {
        fn kind(&self) -> &'static str {
            match self {
                TestMsg::One(_) => "ONE",
                TestMsg::Many(_) => "MANY",
            }
        }

        fn size_hint(&self) -> usize {
            16
        }
    }

    #[test]
    fn flush_coalesces_per_destination_and_reports_stats() {
        let mut network: SimNetwork<TestMsg> = SimNetwork::new(NetworkConfig::perfect());
        let a = network.register(NodeId::Site(rainbow_common::SiteId(1)));
        let b = network.register(NodeId::Site(rainbow_common::SiteId(2)));
        let handle = network.handle();
        let from = NodeId::Site(rainbow_common::SiteId(0));
        network.register(from);

        let mut outbox = Outbox::new();
        assert!(outbox.is_empty());
        outbox.push(NodeId::Site(rainbow_common::SiteId(1)), TestMsg::One(1));
        outbox.push(NodeId::Site(rainbow_common::SiteId(1)), TestMsg::One(2));
        outbox.push(NodeId::Site(rainbow_common::SiteId(2)), TestMsg::One(3));
        assert_eq!(outbox.len(), 3);

        let stats = outbox.flush(&handle, from, TestMsg::Many);
        assert_eq!(stats.envelopes, 2);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.largest_batch, 2);
        assert!(outbox.is_empty(), "flush drains the outbox");

        let batched = a.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(
            batched.payload,
            TestMsg::Many(vec![TestMsg::One(1), TestMsg::One(2)])
        );
        let single = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(single.payload, TestMsg::One(3), "no batch-of-one wrapping");

        // An empty flush sends nothing.
        let stats = outbox.flush(&handle, from, TestMsg::Many);
        assert_eq!(stats, FlushStats::default());
        network.shutdown();
    }
}
