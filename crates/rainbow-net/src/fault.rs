//! Fault and recovery injection.
//!
//! The Rainbow GUI lets the user "inject network and site failures and
//! recoveries" while a workload is running; [`FaultController`] is the
//! programmatic version of that panel. The controller is shared between the
//! network simulator (which consults it on every send/delivery) and the
//! Session API / experiment scripts (which mutate it).

use crate::node::NodeId;
use parking_lot::RwLock;
use rainbow_common::SiteId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared fault state: crashed nodes and network partitions.
///
/// A *crash* makes a node stop sending and receiving: messages to and from
/// it are dropped until it recovers. A *partition* assigns nodes to groups;
/// messages crossing group boundaries are dropped until the partition heals.
/// Nodes not mentioned in the partition map remain in the default group 0.
#[derive(Debug, Default)]
pub struct FaultController {
    crashed: RwLock<BTreeSet<NodeId>>,
    partition: RwLock<BTreeMap<NodeId, u32>>,
    /// Epoch bumped on every crash, used by sites to detect that they were
    /// restarted (volatile state must be discarded on recovery).
    crash_epochs: RwLock<BTreeMap<NodeId, u64>>,
    injected_crashes: AtomicU64,
    injected_recoveries: AtomicU64,
    injected_partitions: AtomicU64,
}

impl FaultController {
    /// A controller with no faults injected.
    pub fn new() -> Self {
        FaultController::default()
    }

    /// Crashes a node. Messages to/from it are dropped until
    /// [`FaultController::recover`] is called. Crashing an already-crashed
    /// node is a no-op (the epoch is not bumped twice).
    pub fn crash(&self, node: NodeId) {
        let mut crashed = self.crashed.write();
        if crashed.insert(node) {
            *self.crash_epochs.write().entry(node).or_insert(0) += 1;
            self.injected_crashes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Recovers a crashed node. Recovering a live node is a no-op.
    pub fn recover(&self, node: NodeId) {
        let mut crashed = self.crashed.write();
        if crashed.remove(&node) {
            self.injected_recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.read().contains(&node)
    }

    /// Currently crashed nodes.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.crashed.read().iter().copied().collect()
    }

    /// Currently crashed *sites* — the "suspected down" view the
    /// replication planners consult when assembling quorums. Crashes are
    /// ground truth in the simulator (the paper's fault-injection panel),
    /// so this is the strongest failure knowledge a protocol may safely
    /// use; partitions are intentionally excluded (see
    /// [`FaultController::unreachable_from`]).
    pub fn crashed_sites(&self) -> Vec<SiteId> {
        self.crashed
            .read()
            .iter()
            .filter_map(|n| n.as_site())
            .collect()
    }

    /// Every node `origin` currently cannot exchange messages with, whether
    /// crashed or separated by a partition, out of `peers`. Useful for
    /// experiment scripts and diagnostics; *not* fed to the replication
    /// planners, because acting on partition-local unreachability would let
    /// both sides of a split shrink their write sets and diverge.
    pub fn unreachable_from(&self, origin: NodeId, peers: &[NodeId]) -> Vec<NodeId> {
        peers
            .iter()
            .filter(|peer| **peer != origin && !self.can_communicate(origin, **peer))
            .copied()
            .collect()
    }

    /// Number of times `node` has crashed so far (its crash epoch).
    pub fn crash_epoch(&self, node: NodeId) -> u64 {
        self.crash_epochs.read().get(&node).copied().unwrap_or(0)
    }

    /// Splits the network: every node in `groups[i]` joins partition group
    /// `i + 1`; unmentioned nodes stay in group 0. Any previous partition is
    /// replaced.
    pub fn partition(&self, groups: &[Vec<NodeId>]) {
        let mut map = BTreeMap::new();
        for (i, group) in groups.iter().enumerate() {
            for node in group {
                map.insert(*node, i as u32 + 1);
            }
        }
        *self.partition.write() = map;
        self.injected_partitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Isolates a single node from everyone else (a common experiment step).
    pub fn isolate(&self, node: NodeId) {
        self.partition(&[vec![node]]);
    }

    /// Heals all partitions.
    pub fn heal_partition(&self) {
        self.partition.write().clear();
    }

    /// Whether a partition currently separates `a` from `b`.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let map = self.partition.read();
        if map.is_empty() {
            return false;
        }
        let ga = map.get(&a).copied().unwrap_or(0);
        let gb = map.get(&b).copied().unwrap_or(0);
        ga != gb
    }

    /// Whether `from` can currently reach `to` (neither crashed nor
    /// partitioned apart).
    pub fn can_communicate(&self, from: NodeId, to: NodeId) -> bool {
        !self.is_crashed(from) && !self.is_crashed(to) && !self.is_partitioned(from, to)
    }

    /// Clears every fault (crashes and partitions), keeping the injection
    /// counters consistent: each crashed node removed here counts as a
    /// recovery, exactly as if [`FaultController::recover`] had been called
    /// for it. The nemesis harness audits its runs with
    /// `injected_crashes == injected_recoveries` after a clear-all, so the
    /// accounting must be exact. (`injected_partitions` counts partition
    /// *events* and is unaffected by healing, which has no counter.)
    pub fn clear(&self) {
        let mut crashed = self.crashed.write();
        let recovered = crashed.len() as u64;
        crashed.clear();
        drop(crashed);
        if recovered > 0 {
            self.injected_recoveries
                .fetch_add(recovered, Ordering::Relaxed);
        }
        self.partition.write().clear();
    }

    /// Total crash events injected so far.
    pub fn injected_crashes(&self) -> u64 {
        self.injected_crashes.load(Ordering::Relaxed)
    }

    /// Total recovery events injected so far.
    pub fn injected_recoveries(&self) -> u64 {
        self.injected_recoveries.load(Ordering::Relaxed)
    }

    /// Total partition events injected so far.
    pub fn injected_partitions(&self) -> u64 {
        self.injected_partitions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_and_recover_cycle() {
        let f = FaultController::new();
        let s0 = NodeId::site(0);
        assert!(!f.is_crashed(s0));
        assert!(f.can_communicate(s0, NodeId::site(1)));

        f.crash(s0);
        assert!(f.is_crashed(s0));
        assert_eq!(f.crashed_nodes(), vec![s0]);
        assert!(!f.can_communicate(s0, NodeId::site(1)));
        assert!(!f.can_communicate(NodeId::site(1), s0));
        assert_eq!(f.crash_epoch(s0), 1);

        // Double crash does not bump the epoch or the counter.
        f.crash(s0);
        assert_eq!(f.crash_epoch(s0), 1);
        assert_eq!(f.injected_crashes(), 1);

        f.recover(s0);
        assert!(!f.is_crashed(s0));
        assert!(f.can_communicate(s0, NodeId::site(1)));
        assert_eq!(f.injected_recoveries(), 1);

        // Recovering a live node is a no-op.
        f.recover(s0);
        assert_eq!(f.injected_recoveries(), 1);

        // A second crash bumps the epoch.
        f.crash(s0);
        assert_eq!(f.crash_epoch(s0), 2);
    }

    #[test]
    fn partitions_separate_groups_only() {
        let f = FaultController::new();
        let (a, b, c, d) = (
            NodeId::site(0),
            NodeId::site(1),
            NodeId::site(2),
            NodeId::site(3),
        );
        f.partition(&[vec![a, b], vec![c]]);
        // a and b are together.
        assert!(!f.is_partitioned(a, b));
        assert!(f.can_communicate(a, b));
        // c is alone in its group.
        assert!(f.is_partitioned(a, c));
        assert!(f.is_partitioned(b, c));
        // d was not mentioned: it sits in group 0, separated from all named groups.
        assert!(f.is_partitioned(a, d));
        assert!(f.is_partitioned(c, d));
        // A node is never partitioned from itself.
        assert!(!f.is_partitioned(a, a));
        assert_eq!(f.injected_partitions(), 1);

        f.heal_partition();
        assert!(!f.is_partitioned(a, c));
        assert!(f.can_communicate(a, d));
    }

    #[test]
    fn isolate_cuts_one_node_off() {
        let f = FaultController::new();
        let ns = NodeId::NameServer;
        f.isolate(ns);
        assert!(f.is_partitioned(ns, NodeId::site(0)));
        assert!(!f.is_partitioned(NodeId::site(0), NodeId::site(1)));
        assert!(!f.is_crashed(ns), "isolation is not a crash");
    }

    #[test]
    fn clear_removes_all_faults() {
        let f = FaultController::new();
        f.crash(NodeId::site(0));
        f.partition(&[vec![NodeId::site(1)]]);
        f.clear();
        assert!(!f.is_crashed(NodeId::site(0)));
        assert!(!f.is_partitioned(NodeId::site(1), NodeId::site(2)));
    }

    #[test]
    fn clear_keeps_crash_and_recovery_counters_balanced() {
        let f = FaultController::new();
        f.crash(NodeId::site(0));
        f.crash(NodeId::site(1));
        f.recover(NodeId::site(0));
        f.partition(&[vec![NodeId::site(2)]]);
        f.clear();
        // Clearing site 1's crash counted as a recovery: after a clear-all,
        // every injected crash has a matching recovery on record.
        assert_eq!(f.injected_crashes(), 2);
        assert_eq!(f.injected_recoveries(), 2);
        // A clear with nothing crashed adds no phantom recoveries.
        f.clear();
        assert_eq!(f.injected_recoveries(), 2);
        assert_eq!(f.injected_partitions(), 1, "partition events stay counted");
    }

    #[test]
    fn crashed_sites_and_unreachable_views() {
        let f = FaultController::new();
        f.crash(NodeId::site(1));
        f.crash(NodeId::NameServer);
        // Only site nodes show up in the planner-facing view.
        assert_eq!(f.crashed_sites(), vec![SiteId(1)]);

        f.partition(&[vec![NodeId::site(2)]]);
        let peers = [NodeId::site(0), NodeId::site(1), NodeId::site(2)];
        let unreachable = f.unreachable_from(NodeId::site(0), &peers);
        // Site 1 is crashed, site 2 is across the partition; site 0 itself
        // is never listed.
        assert_eq!(unreachable, vec![NodeId::site(1), NodeId::site(2)]);
        // ...but the planner view still only suspects the crash.
        assert_eq!(f.crashed_sites(), vec![SiteId(1)]);
    }

    #[test]
    fn empty_partition_map_means_fully_connected() {
        let f = FaultController::new();
        assert!(!f.is_partitioned(NodeId::site(0), NodeId::Client(1)));
        assert!(f.can_communicate(NodeId::NameServer, NodeId::Client(0)));
    }
}
