//! Identities of the processes attached to the simulated network.

use rainbow_common::SiteId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A process that can send and receive messages through the simulator.
///
/// The Rainbow core consists of "the name server and a number of Rainbow
/// sites"; in addition, the workload generator and progress monitor (the
/// WLGlet/PMlet roles of the middle tier) attach as client nodes so their
/// requests also travel — and are counted — like any other message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A Rainbow site.
    Site(SiteId),
    /// The (single, per-instance) Rainbow name server.
    NameServer,
    /// A client of the system: the workload generator, progress monitor or a
    /// manual user session. The index distinguishes concurrent clients.
    Client(u32),
}

impl NodeId {
    /// Shorthand for a site node.
    pub fn site(id: u32) -> Self {
        NodeId::Site(SiteId(id))
    }

    /// The wrapped site id, if this node is a site.
    pub fn as_site(&self) -> Option<SiteId> {
        match self {
            NodeId::Site(id) => Some(*id),
            _ => None,
        }
    }

    /// True if this node is a site.
    pub fn is_site(&self) -> bool {
        matches!(self, NodeId::Site(_))
    }
}

impl From<SiteId> for NodeId {
    fn from(id: SiteId) -> Self {
        NodeId::Site(id)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Site(id) => write!(f, "{id}"),
            NodeId::NameServer => write!(f, "nameserver"),
            NodeId::Client(i) => write!(f, "client{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_helpers() {
        let n = NodeId::site(3);
        assert!(n.is_site());
        assert_eq!(n.as_site(), Some(SiteId(3)));
        assert_eq!(NodeId::NameServer.as_site(), None);
        assert!(!NodeId::Client(0).is_site());
    }

    #[test]
    fn conversion_from_site_id() {
        let n: NodeId = SiteId(7).into();
        assert_eq!(n, NodeId::Site(SiteId(7)));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(NodeId::site(2).to_string(), "site2");
        assert_eq!(NodeId::NameServer.to_string(), "nameserver");
        assert_eq!(NodeId::Client(5).to_string(), "client5");
    }

    #[test]
    fn ordering_groups_sites_before_nameserver_and_clients() {
        let mut nodes = vec![
            NodeId::Client(0),
            NodeId::NameServer,
            NodeId::site(1),
            NodeId::site(0),
        ];
        nodes.sort();
        assert_eq!(
            nodes,
            vec![
                NodeId::site(0),
                NodeId::site(1),
                NodeId::NameServer,
                NodeId::Client(0)
            ]
        );
    }
}
