//! Network simulation configuration: latency models, loss and per-link
//! overrides.
//!
//! The Rainbow GUI lets the user "configure a network simulation" before
//! configuring anything else; these types are that configuration in data
//! form, and the Session API in `rainbow-control` exposes them directly.

use crate::node::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How long a message takes from sender to receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LatencyModel {
    /// Deliver immediately (useful for protocol unit tests).
    #[default]
    None,
    /// A fixed one-way delay in microseconds.
    Constant {
        /// One-way delay in microseconds.
        micros: u64,
    },
    /// Uniformly distributed delay in `[min_micros, max_micros]`.
    Uniform {
        /// Lower bound in microseconds.
        min_micros: u64,
        /// Upper bound in microseconds.
        max_micros: u64,
    },
    /// Normally distributed delay (truncated at zero).
    Normal {
        /// Mean delay in microseconds.
        mean_micros: u64,
        /// Standard deviation in microseconds.
        std_micros: u64,
    },
}

impl LatencyModel {
    /// Convenience constructor: a constant delay.
    pub fn constant(d: Duration) -> Self {
        LatencyModel::Constant {
            micros: d.as_micros() as u64,
        }
    }

    /// Convenience constructor: uniform in `[min, max]`.
    pub fn uniform(min: Duration, max: Duration) -> Self {
        LatencyModel::Uniform {
            min_micros: min.as_micros() as u64,
            max_micros: max.as_micros() as u64,
        }
    }

    /// Convenience constructor: normal with mean and standard deviation.
    pub fn normal(mean: Duration, std: Duration) -> Self {
        LatencyModel::Normal {
            mean_micros: mean.as_micros() as u64,
            std_micros: std.as_micros() as u64,
        }
    }

    /// Draws one delay sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Duration {
        match *self {
            LatencyModel::None => Duration::ZERO,
            LatencyModel::Constant { micros } => Duration::from_micros(micros),
            LatencyModel::Uniform {
                min_micros,
                max_micros,
            } => {
                let (lo, hi) = if min_micros <= max_micros {
                    (min_micros, max_micros)
                } else {
                    (max_micros, min_micros)
                };
                Duration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::Normal {
                mean_micros,
                std_micros,
            } => {
                // Box-Muller transform; avoids pulling in rand_distr.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let sample = mean_micros as f64 + z * std_micros as f64;
                Duration::from_micros(sample.max(0.0) as u64)
            }
        }
    }

    /// The expected (mean) delay of the model, used by reports.
    pub fn mean(&self) -> Duration {
        match *self {
            LatencyModel::None => Duration::ZERO,
            LatencyModel::Constant { micros } => Duration::from_micros(micros),
            LatencyModel::Uniform {
                min_micros,
                max_micros,
            } => Duration::from_micros((min_micros + max_micros) / 2),
            LatencyModel::Normal { mean_micros, .. } => Duration::from_micros(mean_micros),
        }
    }
}

/// Behaviour of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Latency applied to each message on the link.
    pub latency: LatencyModel,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss_probability: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: LatencyModel::None,
            loss_probability: 0.0,
        }
    }
}

impl LinkConfig {
    /// A perfect link: no latency, no loss.
    pub fn perfect() -> Self {
        LinkConfig::default()
    }

    /// A link with the given latency model and no loss.
    pub fn with_latency(latency: LatencyModel) -> Self {
        LinkConfig {
            latency,
            loss_probability: 0.0,
        }
    }

    /// Builder-style loss probability (clamped to `[0, 1]`).
    pub fn with_loss(mut self, probability: f64) -> Self {
        self.loss_probability = probability.clamp(0.0, 1.0);
        self
    }
}

/// A per-directed-link override entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkOverride {
    /// Sender side of the directed link.
    pub from: NodeId,
    /// Receiver side of the directed link.
    pub to: NodeId,
    /// Link behaviour replacing the default for this direction.
    pub link: LinkConfig,
}

/// Complete configuration of the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Link behaviour used for every pair without an explicit override.
    pub default_link: LinkConfig,
    /// Per-directed-pair overrides (later entries win).
    pub overrides: Vec<LinkOverride>,
    /// Seed for latency/loss randomness (experiment repeatability).
    pub seed: u64,
    /// Messages a node sends to itself bypass the network when true (the
    /// default): local copy accesses cost no messages, matching how Rainbow
    /// counts only inter-site traffic.
    pub loopback_is_free: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            default_link: LinkConfig::default(),
            overrides: Vec::new(),
            seed: 0,
            loopback_is_free: true,
        }
    }
}

impl NetworkConfig {
    /// A perfect network (no latency, no loss) — the default for unit tests.
    pub fn perfect() -> Self {
        NetworkConfig::default()
    }

    /// A LAN-like network: every link gets the same uniform latency.
    pub fn lan(min: Duration, max: Duration) -> Self {
        NetworkConfig {
            default_link: LinkConfig::with_latency(LatencyModel::uniform(min, max)),
            ..NetworkConfig::default()
        }
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style default-link override.
    pub fn with_default_link(mut self, link: LinkConfig) -> Self {
        self.default_link = link;
        self
    }

    /// Overrides the link from `from` to `to` (one direction only).
    pub fn override_link(mut self, from: NodeId, to: NodeId, link: LinkConfig) -> Self {
        self.overrides.push(LinkOverride { from, to, link });
        self
    }

    /// The effective configuration of the directed link `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.overrides
            .iter()
            .rev()
            .find(|o| o.from == from && o.to == to)
            .map(|o| o.link)
            .unwrap_or(self.default_link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::rng::seeded_rng;

    #[test]
    fn latency_model_samples_respect_bounds() {
        let mut rng = seeded_rng(1);
        assert_eq!(LatencyModel::None.sample(&mut rng), Duration::ZERO);
        assert_eq!(
            LatencyModel::constant(Duration::from_millis(3)).sample(&mut rng),
            Duration::from_millis(3)
        );
        let uniform = LatencyModel::uniform(Duration::from_micros(100), Duration::from_micros(200));
        for _ in 0..200 {
            let d = uniform.sample(&mut rng);
            assert!(d >= Duration::from_micros(100) && d <= Duration::from_micros(200));
        }
    }

    #[test]
    fn uniform_with_swapped_bounds_does_not_panic() {
        let mut rng = seeded_rng(2);
        let swapped = LatencyModel::Uniform {
            min_micros: 500,
            max_micros: 100,
        };
        for _ in 0..50 {
            let d = swapped.sample(&mut rng);
            assert!(d >= Duration::from_micros(100) && d <= Duration::from_micros(500));
        }
    }

    #[test]
    fn normal_latency_centres_on_mean_and_never_negative() {
        let mut rng = seeded_rng(3);
        let model = LatencyModel::normal(Duration::from_micros(1000), Duration::from_micros(200));
        let samples: Vec<Duration> = (0..2000).map(|_| model.sample(&mut rng)).collect();
        let mean_us: f64 =
            samples.iter().map(|d| d.as_micros() as f64).sum::<f64>() / samples.len() as f64;
        assert!((mean_us - 1000.0).abs() < 50.0, "observed mean {mean_us}");
    }

    #[test]
    fn latency_means() {
        assert_eq!(LatencyModel::None.mean(), Duration::ZERO);
        assert_eq!(
            LatencyModel::constant(Duration::from_millis(2)).mean(),
            Duration::from_millis(2)
        );
        assert_eq!(
            LatencyModel::uniform(Duration::from_micros(100), Duration::from_micros(300)).mean(),
            Duration::from_micros(200)
        );
        assert_eq!(
            LatencyModel::normal(Duration::from_micros(150), Duration::from_micros(10)).mean(),
            Duration::from_micros(150)
        );
    }

    #[test]
    fn link_config_builders_clamp_loss() {
        let link = LinkConfig::perfect().with_loss(1.5);
        assert_eq!(link.loss_probability, 1.0);
        let link = LinkConfig::perfect().with_loss(-0.5);
        assert_eq!(link.loss_probability, 0.0);
        let link = LinkConfig::with_latency(LatencyModel::constant(Duration::from_millis(1)));
        assert_eq!(link.loss_probability, 0.0);
    }

    #[test]
    fn network_config_link_lookup_uses_overrides() {
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        let cfg = NetworkConfig::lan(Duration::from_micros(100), Duration::from_micros(300))
            .with_seed(9)
            .override_link(a, b, LinkConfig::perfect().with_loss(0.5));
        assert_eq!(cfg.link(a, b).loss_probability, 0.5);
        // The reverse direction keeps the default.
        assert_eq!(cfg.link(b, a).loss_probability, 0.0);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.loopback_is_free);
    }

    #[test]
    fn perfect_network_is_default() {
        assert_eq!(NetworkConfig::perfect(), NetworkConfig::default());
    }
}
