//! The in-process simulated network.
//!
//! [`SimNetwork`] connects Rainbow nodes (sites, the name server, clients)
//! with unbounded channels and a background *delivery thread* that applies
//! the configured latency model, random loss, partitions and crash faults to
//! every message. All traffic is counted in [`NetworkCounters`] so
//! experiments can report message costs exactly.
//!
//! The payload type is generic: `rainbow-core` instantiates the network with
//! its protocol message enum. The only requirement is the [`NetMessage`]
//! trait, which labels messages with a kind (for per-kind counting) and an
//! approximate size (for byte accounting).

use crate::config::NetworkConfig;
use crate::counters::NetworkCounters;
use crate::fault::FaultController;
use crate::node::NodeId;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rainbow_common::rng::seeded_rng;
use rainbow_common::{MessageId, RainbowError, RainbowResult, TxnId};
use rainbow_trace::{Phase, TraceEvent, Tracer, Track};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Trait implemented by network payloads so the simulator can label and
/// size-account them without knowing their concrete type.
pub trait NetMessage: Send + Clone + 'static {
    /// Short, stable label of the message kind (e.g. `"2PC_PREPARE"`).
    fn kind(&self) -> &'static str;

    /// Approximate serialized size in bytes (headers included), used only
    /// for byte counters.
    fn size_hint(&self) -> usize {
        64
    }

    /// The transaction this message belongs to, when it belongs to one.
    /// Used by the tracer to attribute queue-delay spans; `None` (the
    /// default) means the message is never traced.
    fn txn(&self) -> Option<TxnId> {
        None
    }
}

/// A message in flight: payload plus addressing metadata.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Unique id assigned by the simulator.
    pub id: MessageId,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The payload.
    pub payload: M,
}

/// A delivery scheduled for a future instant.
struct ScheduledDelivery<M> {
    deliver_at: Instant,
    seq: u64,
    envelope: Envelope<M>,
    /// `(txn, enqueue time)` when the network tracer wants a queue-delay
    /// span for this message.
    trace: Option<(TxnId, u64)>,
}

impl<M> PartialEq for ScheduledDelivery<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for ScheduledDelivery<M> {}
impl<M> PartialOrd for ScheduledDelivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for ScheduledDelivery<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct Shared<M: NetMessage> {
    config: NetworkConfig,
    faults: Arc<FaultController>,
    counters: Arc<NetworkCounters>,
    registry: RwLock<HashMap<NodeId, Sender<Envelope<M>>>>,
    scheduler: Sender<ScheduledDelivery<M>>,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    rng: Mutex<StdRng>,
    shutdown: AtomicBool,
    tracer: Option<Arc<Tracer>>,
}

impl<M: NetMessage> Shared<M> {
    /// Records one message's queue delay (latency model + scheduler lag)
    /// into the tracer: always into the queue-delay histogram, and as a
    /// net-track span when the transaction is sampled.
    fn trace_delivery(&self, envelope: &Envelope<M>, txn: TxnId, enqueued_us: u64) {
        let Some(tracer) = self.tracer.as_ref() else {
            return;
        };
        let now = tracer.now_us();
        let delay = now.saturating_sub(enqueued_us);
        tracer.record_phase(Phase::QueueDelay, Duration::from_micros(delay));
        if tracer.sampled(txn) {
            tracer.record(TraceEvent {
                txn,
                track: Track::Net,
                label: format!("net:{}", envelope.payload.kind()),
                start_us: enqueued_us,
                dur_us: delay,
                detail: format!("{} -> {}", envelope.from, envelope.to),
            });
        }
    }

    fn next_message_id(&self) -> MessageId {
        MessageId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Hands the envelope to the receiver's channel if the receiver is still
    /// registered and reachable.
    fn deliver_now(&self, envelope: Envelope<M>) {
        // Re-check faults at delivery time: the receiver may have crashed or
        // been partitioned away while the message was "on the wire".
        if self.faults.is_crashed(envelope.to) || self.faults.is_crashed(envelope.from) {
            self.counters.record_dropped_crash();
            return;
        }
        if self.faults.is_partitioned(envelope.from, envelope.to) {
            self.counters.record_dropped_partition();
            return;
        }
        let registry = self.registry.read();
        if let Some(tx) = registry.get(&envelope.to) {
            if tx.send(envelope).is_ok() {
                self.counters.record_delivered();
            }
        }
        // Unregistered destination: silently dropped (not counted as a fault
        // drop — it is a configuration situation, e.g. a site not yet started).
    }
}

/// A cloneable handle for sending messages through the simulator.
pub struct NetHandle<M: NetMessage> {
    shared: Arc<Shared<M>>,
}

impl<M: NetMessage> Clone for NetHandle<M> {
    fn clone(&self) -> Self {
        NetHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: NetMessage> NetHandle<M> {
    /// Sends `payload` from `from` to `to`.
    ///
    /// The returned id identifies the message in traces; a successful return
    /// does **not** mean the message will be delivered (it may be lost to
    /// faults or random loss — exactly like UDP on a real network).
    pub fn send(&self, from: NodeId, to: NodeId, payload: M) -> RainbowResult<MessageId> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::Relaxed) {
            return Err(RainbowError::Shutdown);
        }
        let id = shared.next_message_id();
        let envelope = Envelope {
            id,
            from,
            to,
            payload,
        };

        // Loopback: a node talking to itself does not use the network.
        if from == to && shared.config.loopback_is_free {
            if !shared.faults.is_crashed(to) {
                let registry = shared.registry.read();
                if let Some(tx) = registry.get(&to) {
                    let _ = tx.send(envelope);
                }
            }
            return Ok(id);
        }

        shared.counters.record_sent(
            from,
            to,
            envelope.payload.kind(),
            envelope.payload.size_hint(),
        );

        // Crash / partition checks at send time.
        if shared.faults.is_crashed(from) || shared.faults.is_crashed(to) {
            shared.counters.record_dropped_crash();
            return Ok(id);
        }
        if shared.faults.is_partitioned(from, to) {
            shared.counters.record_dropped_partition();
            return Ok(id);
        }

        let link = shared.config.link(from, to);
        let (lost, latency) = {
            let mut rng = shared.rng.lock();
            let lost = link.loss_probability > 0.0 && rng.gen::<f64>() < link.loss_probability;
            let latency = link.latency.sample(&mut *rng);
            (lost, latency)
        };
        if lost {
            shared.counters.record_dropped_loss();
            return Ok(id);
        }

        // Queue-delay tracing: stamp the enqueue time for transaction
        // messages when a tracer is attached.
        let trace = match shared.tracer.as_ref() {
            Some(tracer) => envelope.payload.txn().map(|txn| (txn, tracer.now_us())),
            None => None,
        };

        if latency.is_zero() {
            if let Some((txn, enqueued_us)) = trace {
                shared.trace_delivery(&envelope, txn, enqueued_us);
            }
            shared.deliver_now(envelope);
        } else {
            let job = ScheduledDelivery {
                deliver_at: Instant::now() + latency,
                seq: shared.next_seq.fetch_add(1, Ordering::Relaxed),
                envelope,
                trace,
            };
            shared
                .scheduler
                .send(job)
                .map_err(|_| RainbowError::Network("delivery thread stopped".into()))?;
        }
        Ok(id)
    }

    /// Broadcasts `payload` from `from` to every node in `targets`,
    /// returning the number of sends attempted.
    pub fn broadcast(
        &self,
        from: NodeId,
        targets: impl IntoIterator<Item = NodeId>,
        payload: M,
    ) -> RainbowResult<usize> {
        let mut sent = 0;
        for to in targets {
            self.send(from, to, payload.clone())?;
            sent += 1;
        }
        Ok(sent)
    }

    /// The fault controller shared with this network.
    pub fn faults(&self) -> Arc<FaultController> {
        Arc::clone(&self.shared.faults)
    }

    /// The traffic counters shared with this network.
    pub fn counters(&self) -> Arc<NetworkCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// The network configuration (immutable once the network is built).
    pub fn config(&self) -> &NetworkConfig {
        &self.shared.config
    }
}

/// The simulated network: owns the delivery thread and the node registry.
pub struct SimNetwork<M: NetMessage> {
    shared: Arc<Shared<M>>,
    delivery_thread: Option<JoinHandle<()>>,
}

impl<M: NetMessage> SimNetwork<M> {
    /// Builds a network from a configuration, spawning the delivery thread.
    pub fn new(config: NetworkConfig) -> Self {
        Self::with_faults(config, Arc::new(FaultController::new()))
    }

    /// Builds a network that records every transaction message's queue
    /// delay into `tracer` (`None` behaves exactly like [`SimNetwork::new`]).
    pub fn traced(config: NetworkConfig, tracer: Option<Arc<Tracer>>) -> Self {
        Self::build(config, Arc::new(FaultController::new()), tracer)
    }

    /// Builds a network sharing an externally created fault controller
    /// (useful when an experiment script wants to hold the controller
    /// independently of the network's lifetime).
    pub fn with_faults(config: NetworkConfig, faults: Arc<FaultController>) -> Self {
        Self::build(config, faults, None)
    }

    fn build(
        config: NetworkConfig,
        faults: Arc<FaultController>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let (tx, rx) = unbounded::<ScheduledDelivery<M>>();
        let seed = config.seed;
        let shared = Arc::new(Shared {
            config,
            faults,
            counters: Arc::new(NetworkCounters::new()),
            registry: RwLock::new(HashMap::new()),
            scheduler: tx,
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            rng: Mutex::new(seeded_rng(seed)),
            shutdown: AtomicBool::new(false),
            tracer,
        });
        let thread_shared = Arc::clone(&shared);
        let delivery_thread = std::thread::Builder::new()
            .name("rainbow-net-delivery".into())
            .spawn(move || delivery_loop(thread_shared, rx))
            .expect("failed to spawn network delivery thread");
        SimNetwork {
            shared,
            delivery_thread: Some(delivery_thread),
        }
    }

    /// Registers a node and returns the receiving end of its mailbox.
    /// Registering the same node again replaces its mailbox (the old
    /// receiver stops getting messages), which is how a site "reboots" after
    /// a crash with an empty volatile queue.
    pub fn register(&self, node: NodeId) -> Receiver<Envelope<M>> {
        let (tx, rx) = unbounded();
        self.shared.registry.write().insert(node, tx);
        rx
    }

    /// Removes a node from the network.
    pub fn unregister(&self, node: NodeId) {
        self.shared.registry.write().remove(&node);
    }

    /// Nodes currently registered.
    pub fn registered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.shared.registry.read().keys().copied().collect();
        nodes.sort();
        nodes
    }

    /// A cloneable sending handle.
    pub fn handle(&self) -> NetHandle<M> {
        NetHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The fault controller.
    pub fn faults(&self) -> Arc<FaultController> {
        Arc::clone(&self.shared.faults)
    }

    /// The traffic counters.
    pub fn counters(&self) -> Arc<NetworkCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Stops the delivery thread. In-flight delayed messages are dropped.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Closing the scheduler channel wakes the delivery thread up.
        // We cannot drop the sender (it lives in Shared), so we rely on the
        // shutdown flag plus the timeout in the delivery loop.
        if let Some(handle) = self.delivery_thread.take() {
            let _ = handle.join();
        }
    }
}

impl<M: NetMessage> Drop for SimNetwork<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The delivery loop: waits for scheduled messages and delivers them when
/// their latency has elapsed.
fn delivery_loop<M: NetMessage>(shared: Arc<Shared<M>>, rx: Receiver<ScheduledDelivery<M>>) {
    let mut pending: BinaryHeap<Reverse<ScheduledDelivery<M>>> = BinaryHeap::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // How long until the next scheduled delivery?
        let wait = pending
            .peek()
            .map(|Reverse(job)| {
                job.deliver_at
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(50))
            })
            .unwrap_or(Duration::from_millis(50));

        match rx.recv_timeout(wait) {
            Ok(job) => pending.push(Reverse(job)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        // Drain any additional immediately available jobs.
        while let Ok(job) = rx.try_recv() {
            pending.push(Reverse(job));
        }
        // Deliver everything that is due.
        let now = Instant::now();
        while let Some(Reverse(job)) = pending.peek() {
            if job.deliver_at > now {
                break;
            }
            let Reverse(job) = pending.pop().expect("peeked job must exist");
            if let Some((txn, enqueued_us)) = job.trace {
                shared.trace_delivery(&job.envelope, txn, enqueued_us);
            }
            shared.deliver_now(job.envelope);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LatencyModel, LinkConfig};
    use std::time::Duration;

    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }

    impl NetMessage for TestMsg {
        fn kind(&self) -> &'static str {
            match self {
                TestMsg::Ping(_) => "PING",
                TestMsg::Pong(_) => "PONG",
            }
        }
        fn size_hint(&self) -> usize {
            16
        }
        fn txn(&self) -> Option<TxnId> {
            match self {
                TestMsg::Ping(n) => Some(TxnId::new(rainbow_common::SiteId(0), *n as u64)),
                TestMsg::Pong(_) => None,
            }
        }
    }

    fn recv_with_timeout(rx: &Receiver<Envelope<TestMsg>>, ms: u64) -> Option<Envelope<TestMsg>> {
        rx.recv_timeout(Duration::from_millis(ms)).ok()
    }

    #[test]
    fn messages_are_delivered_between_registered_nodes() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        let _rx_a = net.register(a);
        let rx_b = net.register(b);
        let handle = net.handle();

        handle.send(a, b, TestMsg::Ping(1)).unwrap();
        let env = recv_with_timeout(&rx_b, 500).expect("message not delivered");
        assert_eq!(env.from, a);
        assert_eq!(env.to, b);
        assert_eq!(env.payload, TestMsg::Ping(1));
        assert_eq!(net.counters().sent(), 1);
        assert_eq!(net.counters().delivered(), 1);
        assert_eq!(net.counters().kind("PING"), 1);
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = NetworkConfig::default()
            .with_default_link(LinkConfig::with_latency(LatencyModel::constant(
                Duration::from_millis(30),
            )))
            .with_seed(1);
        let net = SimNetwork::<TestMsg>::new(cfg);
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        let rx_b = net.register(b);
        net.register(a);
        let start = Instant::now();
        net.handle().send(a, b, TestMsg::Ping(7)).unwrap();
        let env = recv_with_timeout(&rx_b, 1000).expect("delayed message never arrived");
        assert_eq!(env.payload, TestMsg::Ping(7));
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "message arrived too early: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn messages_to_crashed_nodes_are_dropped() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        net.register(a);
        let rx_b = net.register(b);
        net.faults().crash(b);
        net.handle().send(a, b, TestMsg::Ping(1)).unwrap();
        assert!(recv_with_timeout(&rx_b, 50).is_none());
        assert_eq!(net.counters().dropped(), 1);
        assert_eq!(net.counters().delivered(), 0);

        net.faults().recover(b);
        net.handle().send(a, b, TestMsg::Ping(2)).unwrap();
        assert!(recv_with_timeout(&rx_b, 500).is_some());
    }

    #[test]
    fn partitions_block_cross_group_traffic_until_healed() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        let c = NodeId::site(2);
        net.register(a);
        let rx_b = net.register(b);
        let rx_c = net.register(c);
        net.faults().partition(&[vec![a, b], vec![c]]);

        let handle = net.handle();
        handle.send(a, b, TestMsg::Ping(1)).unwrap();
        handle.send(a, c, TestMsg::Ping(2)).unwrap();
        assert!(
            recv_with_timeout(&rx_b, 500).is_some(),
            "same-group traffic must flow"
        );
        assert!(
            recv_with_timeout(&rx_c, 50).is_none(),
            "cross-group traffic must be blocked"
        );

        net.faults().heal_partition();
        handle.send(a, c, TestMsg::Ping(3)).unwrap();
        assert!(recv_with_timeout(&rx_c, 500).is_some());
    }

    #[test]
    fn lossy_links_drop_roughly_the_configured_fraction() {
        let cfg = NetworkConfig::default()
            .with_default_link(LinkConfig::perfect().with_loss(0.5))
            .with_seed(42);
        let net = SimNetwork::<TestMsg>::new(cfg);
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        net.register(a);
        let rx_b = net.register(b);
        let handle = net.handle();
        for i in 0..400 {
            handle.send(a, b, TestMsg::Ping(i)).unwrap();
        }
        // Drain everything that made it through.
        let mut received = 0;
        while recv_with_timeout(&rx_b, 20).is_some() {
            received += 1;
        }
        let dropped = net.counters().dropped();
        assert_eq!(received + dropped as i32, 400);
        assert!(
            (120..=280).contains(&received),
            "with 50% loss, received {received} of 400"
        );
    }

    #[test]
    fn loopback_is_free_and_uncounted() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let rx_a = net.register(a);
        net.handle().send(a, a, TestMsg::Ping(1)).unwrap();
        assert!(recv_with_timeout(&rx_a, 500).is_some());
        assert_eq!(net.counters().sent(), 0, "loopback must not be counted");
    }

    #[test]
    fn broadcast_reaches_every_target() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let sender = NodeId::NameServer;
        net.register(sender);
        let receivers: Vec<_> = (0..4)
            .map(|i| (NodeId::site(i), net.register(NodeId::site(i))))
            .collect();
        let n = net
            .handle()
            .broadcast(
                sender,
                receivers.iter().map(|(id, _)| *id),
                TestMsg::Pong(9),
            )
            .unwrap();
        assert_eq!(n, 4);
        for (_, rx) in &receivers {
            let env = recv_with_timeout(rx, 500).expect("broadcast target missed the message");
            assert_eq!(env.payload, TestMsg::Pong(9));
        }
        assert_eq!(net.counters().sent(), 4);
    }

    #[test]
    fn unregistered_destination_is_silently_dropped() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        net.register(a);
        // site1 never registered.
        net.handle()
            .send(a, NodeId::site(1), TestMsg::Ping(0))
            .unwrap();
        assert_eq!(net.counters().sent(), 1);
        assert_eq!(net.counters().delivered(), 0);
    }

    #[test]
    fn re_registering_replaces_the_mailbox() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        net.register(a);
        let rx_old = net.register(b);
        let rx_new = net.register(b);
        net.handle().send(a, b, TestMsg::Ping(5)).unwrap();
        assert!(recv_with_timeout(&rx_new, 500).is_some());
        assert!(recv_with_timeout(&rx_old, 50).is_none());
        assert_eq!(net.registered_nodes(), vec![a, b]);
        net.unregister(b);
        assert_eq!(net.registered_nodes(), vec![a]);
    }

    #[test]
    fn send_after_shutdown_fails() {
        let mut net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        net.register(a);
        net.register(b);
        let handle = net.handle();
        net.shutdown();
        assert!(matches!(
            handle.send(a, b, TestMsg::Ping(1)),
            Err(RainbowError::Shutdown)
        ));
    }

    #[test]
    fn per_link_override_applies_to_one_direction_only() {
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        let cfg = NetworkConfig::perfect()
            .override_link(a, b, LinkConfig::perfect().with_loss(1.0))
            .with_seed(3);
        let net = SimNetwork::<TestMsg>::new(cfg);
        net.register(a);
        let rx_b = net.register(b);
        let rx_a = net.register(a);
        let handle = net.handle();
        handle.send(a, b, TestMsg::Ping(1)).unwrap();
        handle.send(b, a, TestMsg::Pong(2)).unwrap();
        assert!(
            recv_with_timeout(&rx_b, 50).is_none(),
            "a->b is fully lossy"
        );
        assert!(recv_with_timeout(&rx_a, 500).is_some(), "b->a is perfect");
    }

    #[test]
    fn traced_network_records_queue_delay_spans_and_histogram() {
        let cfg = NetworkConfig::default()
            .with_default_link(LinkConfig::with_latency(LatencyModel::constant(
                Duration::from_millis(10),
            )))
            .with_seed(1);
        let tracer = Arc::new(Tracer::new(rainbow_trace::TraceConfig::sample_all()));
        let net = SimNetwork::<TestMsg>::traced(cfg, Some(Arc::clone(&tracer)));
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        net.register(a);
        let rx_b = net.register(b);
        let handle = net.handle();
        handle.send(a, b, TestMsg::Ping(3)).unwrap();
        // Pong carries no transaction: it must not be traced.
        handle.send(a, b, TestMsg::Pong(1)).unwrap();
        assert!(recv_with_timeout(&rx_b, 1000).is_some());
        assert!(recv_with_timeout(&rx_b, 1000).is_some());

        let stats = tracer.phase_stats();
        assert_eq!(stats["queue-delay"].count, 1);
        assert!(
            stats["queue-delay"].min_us >= 5_000,
            "10ms link latency must dominate the queue delay: {:?}",
            stats["queue-delay"]
        );
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, Track::Net);
        assert_eq!(events[0].label, "net:PING");
        assert_eq!(events[0].detail, "site0 -> site1");
    }

    #[test]
    fn message_ids_are_unique_and_increasing() {
        let net = SimNetwork::<TestMsg>::new(NetworkConfig::perfect());
        let a = NodeId::site(0);
        let b = NodeId::site(1);
        net.register(a);
        net.register(b);
        let handle = net.handle();
        let id1 = handle.send(a, b, TestMsg::Ping(1)).unwrap();
        let id2 = handle.send(a, b, TestMsg::Ping(2)).unwrap();
        assert!(id2.0 > id1.0);
    }
}
