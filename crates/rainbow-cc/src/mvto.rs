//! Multi-version timestamp ordering (MVTO).
//!
//! Section 5 of the paper suggests "basic timestamp ordering by
//! multi-versioning TSO" as a term-project extension; this module implements
//! it. Each item keeps a chain of committed versions tagged with the writing
//! transaction's timestamp; reads are served by the youngest version older
//! than the reader and never block. A read is rejected only when an *older*
//! transaction's pre-write is still pending on the item (serving it would
//! skip the version that write is about to insert). Writes are rejected
//! only when they would invalidate a read that has already been granted
//! (i.e. a version older than the writer has been read by a transaction
//! younger than the writer).

use crate::types::{CcDecision, CcProtocol, TxnContext};
use parking_lot::Mutex;
use rainbow_common::txn::AbortCause;
use rainbow_common::{ItemId, Timestamp, TxnId, Value, Version};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
struct VersionEntry {
    /// Timestamp of the transaction that wrote this version
    /// ([`Timestamp::ZERO`] for the initial database state).
    wts: Timestamp,
    /// Largest timestamp of any transaction that read this version.
    rts: Timestamp,
    /// The stored value.
    value: Value,
    /// The replica version number (quorum-consensus metadata, carried along
    /// so reads can return it).
    version: Version,
}

#[derive(Debug, Default)]
struct ItemVersions {
    /// Committed versions ordered by `wts` ascending.
    versions: Vec<VersionEntry>,
    /// Pending writes: txn → timestamp (decided at commit).
    pending_writes: HashMap<TxnId, Timestamp>,
}

impl ItemVersions {
    fn seed_if_empty(&mut self, current: &(Value, Version)) {
        if self.versions.is_empty() {
            self.versions.push(VersionEntry {
                wts: Timestamp::ZERO,
                rts: Timestamp::ZERO,
                value: current.0.clone(),
                version: current.1,
            });
        }
    }

    /// Index of the youngest version with `wts <= ts`.
    fn visible_index(&self, ts: Timestamp) -> Option<usize> {
        self.versions
            .iter()
            .enumerate()
            .filter(|(_, v)| v.wts <= ts)
            .map(|(i, _)| i)
            .next_back()
    }
}

/// Multi-version timestamp ordering for one site.
#[derive(Debug, Default)]
pub struct MultiversionTimestampOrdering {
    items: Mutex<HashMap<ItemId, ItemVersions>>,
    touched: Mutex<HashMap<TxnId, HashSet<ItemId>>>,
    /// Post-recovery admission floor (see
    /// [`CcProtocol::install_recovery_floor`]): a crash loses the version
    /// chains and their `rts` marks, and the rebuilt chain seeds the
    /// surviving committed value at `wts = ZERO` — so below-floor readers
    /// would mistake young data for old, and below-floor writers could
    /// invalidate reads whose `rts` marks vanished.
    floor: Mutex<Timestamp>,
    /// How long a read may wait for an older transaction's pending
    /// pre-write to resolve before being rejected. Zero (the [`Default`])
    /// rejects immediately.
    wait_budget: std::time::Duration,
}

impl MultiversionTimestampOrdering {
    /// Creates an MVTO instance (with a zero wait budget: reads racing an
    /// older pending pre-write are rejected immediately; see
    /// [`MultiversionTimestampOrdering::with_wait_budget`]).
    pub fn new() -> Self {
        MultiversionTimestampOrdering::default()
    }

    /// Lets reads racing an older pending pre-write wait up to `budget` for
    /// it to resolve, preserving MVTO's readers-(almost)-never-abort
    /// property under contention while staying bounded.
    pub fn with_wait_budget(mut self, budget: std::time::Duration) -> Self {
        self.wait_budget = budget;
        self
    }

    /// Number of committed versions currently retained for `item` (including
    /// the seeded initial version). Exposed for tests and the garbage
    /// collection experiment.
    pub fn version_count(&self, item: &ItemId) -> usize {
        self.items
            .lock()
            .get(item)
            .map(|entry| entry.versions.len())
            .unwrap_or(0)
    }

    /// Discards versions older than `horizon` (keeping at least the youngest
    /// one that is still visible to `horizon`), a simple garbage-collection
    /// hook.
    pub fn vacuum(&self, horizon: Timestamp) {
        let mut items = self.items.lock();
        for entry in items.values_mut() {
            if let Some(keep_from) = entry.visible_index(horizon) {
                entry.versions.drain(..keep_from);
            }
        }
    }

    fn track(&self, txn: TxnId, item: &ItemId) {
        self.touched
            .lock()
            .entry(txn)
            .or_default()
            .insert(item.clone());
    }
}

impl CcProtocol for MultiversionTimestampOrdering {
    fn read(&self, txn: &TxnContext, item: &ItemId, current: (Value, Version)) -> CcDecision {
        if txn.ts < *self.floor.lock() {
            return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                item: item.clone(),
                rejected: txn.ts,
            });
        }
        // A pending pre-write by a smaller-timestamped *other* transaction
        // would insert a version between the one this read would pick and
        // the reader — serving the read now silently skips that version
        // (lost update once both commit). Wait, bounded by the wait budget,
        // for the pending write to resolve; reject when the budget runs
        // out so the protocol stays non-blocking overall. The grant happens
        // under the same lock acquisition as the final pending check, so no
        // new pre-write can slip in between.
        let deadline = std::time::Instant::now() + self.wait_budget;
        loop {
            {
                let mut items = self.items.lock();
                let entry = items.entry(item.clone()).or_default();
                entry.seed_if_empty(&current);
                let blocked = entry
                    .pending_writes
                    .iter()
                    .filter(|(id, _)| **id != txn.id)
                    .map(|(_, ts)| *ts)
                    .min()
                    .is_some_and(|pending| txn.ts > pending);
                if !blocked {
                    let Some(index) = entry.visible_index(txn.ts) else {
                        // Nothing is visible below this timestamp — can only
                        // happen if the initial version is younger than the
                        // reader, which the ZERO-seed prevents; treat as a
                        // violation defensively.
                        return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                            item: item.clone(),
                            rejected: txn.ts,
                        });
                    };
                    let version = &mut entry.versions[index];
                    version.rts = version.rts.max(txn.ts);
                    let override_pair = (version.value.clone(), version.version);
                    drop(items);
                    self.track(txn.id, item);
                    return CcDecision::Granted {
                        value_override: Some(override_pair),
                    };
                }
            }
            if std::time::Instant::now() >= deadline {
                return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                    item: item.clone(),
                    rejected: txn.ts,
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    fn prewrite(&self, txn: &TxnContext, item: &ItemId, current: (Value, Version)) -> CcDecision {
        if txn.ts < *self.floor.lock() {
            return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                item: item.clone(),
                rejected: txn.ts,
            });
        }
        let mut items = self.items.lock();
        let entry = items.entry(item.clone()).or_default();
        entry.seed_if_empty(&current);
        match entry.visible_index(txn.ts) {
            Some(index) => {
                let predecessor = &entry.versions[index];
                if predecessor.rts > txn.ts {
                    // A younger transaction already read the version this
                    // write would supersede: granting the write would make
                    // that read incorrect.
                    return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                        item: item.clone(),
                        rejected: txn.ts,
                    });
                }
            }
            None => {
                return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                    item: item.clone(),
                    rejected: txn.ts,
                })
            }
        }
        entry.pending_writes.insert(txn.id, txn.ts);
        drop(items);
        self.track(txn.id, item);
        CcDecision::granted()
    }

    fn validate(&self, _txn: &TxnContext) -> CcDecision {
        CcDecision::granted()
    }

    fn commit(&self, txn: &TxnContext, writes: &[(ItemId, Value, Version)]) {
        let mut items = self.items.lock();
        for (item, value, version) in writes {
            let entry = items.entry(item.clone()).or_default();
            entry.pending_writes.remove(&txn.id);
            // Insert the new version keeping the chain sorted by wts.
            let insert_at = entry
                .versions
                .iter()
                .position(|v| v.wts > txn.ts)
                .unwrap_or(entry.versions.len());
            entry.versions.insert(
                insert_at,
                VersionEntry {
                    wts: txn.ts,
                    rts: txn.ts,
                    value: value.clone(),
                    version: *version,
                },
            );
        }
        if let Some(touched) = self.touched.lock().remove(&txn.id) {
            for item in touched {
                if let Some(entry) = items.get_mut(&item) {
                    entry.pending_writes.remove(&txn.id);
                }
            }
        }
    }

    fn abort(&self, txn: &TxnContext) {
        let mut items = self.items.lock();
        if let Some(touched) = self.touched.lock().remove(&txn.id) {
            for item in touched {
                if let Some(entry) = items.get_mut(&item) {
                    entry.pending_writes.remove(&txn.id);
                }
            }
        }
    }

    fn install_recovery_floor(&self, floor: Timestamp) {
        let mut current = self.floor.lock();
        *current = (*current).max(floor);
    }

    fn name(&self) -> &'static str {
        "MVTO"
    }

    fn active_transactions(&self) -> usize {
        self.touched.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn ctx(seq: u64, ts: u64) -> TxnContext {
        TxnContext::new(TxnId::new(SiteId(0), seq), Timestamp::new(ts, 0))
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    fn current() -> (Value, Version) {
        (Value::Int(0), Version(0))
    }

    fn read_value(cc: &MultiversionTimestampOrdering, ctx: &TxnContext, name: &str) -> Value {
        match cc.read(ctx, &item(name), current()) {
            CcDecision::Granted {
                value_override: Some((value, _)),
            } => value,
            other => panic!("expected granted read with override, got {other:?}"),
        }
    }

    #[test]
    fn read_cannot_skip_an_older_pending_write() {
        let cc = MultiversionTimestampOrdering::new();
        let w = ctx(1, 10);
        assert!(cc.prewrite(&w, &item("x"), current()).is_granted());
        // A younger reader would skip the version T10 is about to insert.
        assert!(!cc.read(&ctx(2, 20), &item("x"), current()).is_granted());
        // An older reader is ordered before the pending write: fine.
        assert!(cc.read(&ctx(3, 5), &item("x"), current()).is_granted());
        // The writer's own read-for-update is never blocked by itself.
        assert!(cc.read(&w, &item("x"), current()).is_granted());
        cc.commit(&w, &[(item("x"), Value::Int(7), Version(1))]);
        let reader = ctx(4, 30);
        assert_eq!(read_value(&cc, &reader, "x"), Value::Int(7));
    }

    #[test]
    fn blocked_read_waits_and_then_sees_the_new_version() {
        use std::sync::Arc;
        use std::time::Duration;
        let cc = Arc::new(
            MultiversionTimestampOrdering::new().with_wait_budget(Duration::from_millis(500)),
        );
        assert!(cc.prewrite(&ctx(1, 10), &item("x"), current()).is_granted());
        let cc2 = Arc::clone(&cc);
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cc2.commit(&ctx(1, 10), &[(item("x"), Value::Int(7), Version(1))]);
        });
        // The ts-20 reader waits out the ts-10 pending write and then reads
        // the version it inserted instead of silently skipping it.
        let reader = ctx(2, 20);
        assert_eq!(read_value(&cc, &reader, "x"), Value::Int(7));
        resolver.join().unwrap();
    }

    #[test]
    fn recovery_floor_fences_pre_crash_timestamps() {
        let cc = MultiversionTimestampOrdering::new();
        cc.install_recovery_floor(Timestamp::new(50, 0));
        assert!(!cc.read(&ctx(1, 20), &item("x"), current()).is_granted());
        assert!(!cc.prewrite(&ctx(2, 49), &item("x"), current()).is_granted());
        // At and above the floor, normal multi-version rules apply.
        assert!(cc.read(&ctx(3, 60), &item("x"), current()).is_granted());
        assert!(cc.prewrite(&ctx(4, 70), &item("x"), current()).is_granted());
    }

    #[test]
    fn reads_see_the_version_visible_at_their_timestamp() {
        let cc = MultiversionTimestampOrdering::new();
        // T10 writes 100, T30 writes 300.
        let w10 = ctx(1, 10);
        assert!(cc.prewrite(&w10, &item("x"), current()).is_granted());
        cc.commit(&w10, &[(item("x"), Value::Int(100), Version(1))]);
        let w30 = ctx(2, 30);
        assert!(cc.prewrite(&w30, &item("x"), current()).is_granted());
        cc.commit(&w30, &[(item("x"), Value::Int(300), Version(2))]);

        // A reader at ts=20 sees 100; a reader at ts=40 sees 300; a reader at
        // ts=5 sees the initial value 0.
        assert_eq!(read_value(&cc, &ctx(3, 20), "x"), Value::Int(100));
        assert_eq!(read_value(&cc, &ctx(4, 40), "x"), Value::Int(300));
        assert_eq!(read_value(&cc, &ctx(5, 5), "x"), Value::Int(0));
        assert_eq!(cc.version_count(&item("x")), 3);
    }

    #[test]
    fn old_readers_never_abort() {
        let cc = MultiversionTimestampOrdering::new();
        let writer = ctx(1, 100);
        assert!(cc.prewrite(&writer, &item("x"), current()).is_granted());
        cc.commit(&writer, &[(item("x"), Value::Int(7), Version(1))]);
        // Under basic TSO this read (ts 50 < wts 100) would abort; under MVTO
        // it reads the older version.
        assert_eq!(read_value(&cc, &ctx(2, 50), "x"), Value::Int(0));
    }

    #[test]
    fn write_invalidating_a_later_read_is_rejected() {
        let cc = MultiversionTimestampOrdering::new();
        // A reader at ts=50 reads the initial version.
        assert!(cc.read(&ctx(1, 50), &item("x"), current()).is_granted());
        // A writer at ts=20 would create a version that the ts=50 reader
        // should have seen: rejected.
        let d = cc.prewrite(&ctx(2, 20), &item("x"), current());
        assert!(matches!(
            d.rejection(),
            Some(AbortCause::CcpTimestampViolation { .. })
        ));
        // A writer younger than the reader is fine.
        assert!(cc.prewrite(&ctx(3, 60), &item("x"), current()).is_granted());
    }

    #[test]
    fn aborted_writes_leave_no_version() {
        let cc = MultiversionTimestampOrdering::new();
        let w = ctx(1, 10);
        assert!(cc.prewrite(&w, &item("x"), current()).is_granted());
        cc.abort(&w);
        assert_eq!(cc.active_transactions(), 0);
        assert_eq!(read_value(&cc, &ctx(2, 20), "x"), Value::Int(0));
        assert_eq!(cc.version_count(&item("x")), 1);
    }

    #[test]
    fn versions_are_kept_sorted_even_with_out_of_order_commits() {
        let cc = MultiversionTimestampOrdering::new();
        let w30 = ctx(1, 30);
        let w10 = ctx(2, 10);
        assert!(cc.prewrite(&w30, &item("x"), current()).is_granted());
        cc.commit(&w30, &[(item("x"), Value::Int(300), Version(2))]);
        // The older writer commits after the newer one (possible with
        // distributed commit ordering); its version must slot in before.
        assert!(cc.prewrite(&w10, &item("x"), current()).is_granted());
        cc.commit(&w10, &[(item("x"), Value::Int(100), Version(1))]);
        assert_eq!(read_value(&cc, &ctx(3, 20), "x"), Value::Int(100));
        assert_eq!(read_value(&cc, &ctx(4, 40), "x"), Value::Int(300));
    }

    #[test]
    fn vacuum_discards_unreachable_versions() {
        let cc = MultiversionTimestampOrdering::new();
        for (i, ts) in [10u64, 20, 30, 40].iter().enumerate() {
            let w = ctx(i as u64 + 1, *ts);
            assert!(cc.prewrite(&w, &item("x"), current()).is_granted());
            cc.commit(
                &w,
                &[(item("x"), Value::Int(*ts as i64), Version(i as u64 + 1))],
            );
        }
        assert_eq!(cc.version_count(&item("x")), 5);
        cc.vacuum(Timestamp::new(35, 0));
        // Versions 0,10,20 are older than the visible-at-35 version (30) and
        // can be dropped; 30 and 40 remain.
        assert_eq!(cc.version_count(&item("x")), 2);
        assert_eq!(read_value(&cc, &ctx(9, 100), "x"), Value::Int(40));
    }

    #[test]
    fn validate_always_grants_and_name_is_mvto() {
        let cc = MultiversionTimestampOrdering::new();
        assert!(cc.validate(&ctx(1, 1)).is_granted());
        assert_eq!(cc.name(), "MVTO");
    }

    #[test]
    fn read_write_conflict_on_same_timestamp_is_allowed_for_own_txn() {
        let cc = MultiversionTimestampOrdering::new();
        let t = ctx(1, 10);
        assert_eq!(read_value(&cc, &t, "x"), Value::Int(0));
        // Writing after having read the same item at the same timestamp is
        // fine (rts == ts, not > ts).
        assert!(cc.prewrite(&t, &item("x"), current()).is_granted());
        cc.commit(&t, &[(item("x"), Value::Int(1), Version(1))]);
        assert_eq!(read_value(&cc, &ctx(2, 20), "x"), Value::Int(1));
    }
}
