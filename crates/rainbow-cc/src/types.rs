//! The concurrency-control protocol trait and its supporting types.

use rainbow_common::protocol::{CcpKind, DeadlockPolicy};
use rainbow_common::{ItemId, Timestamp, TxnId, Value, Version};
use std::sync::Arc;
use std::time::Duration;

/// Per-transaction context handed to every CCP call.
///
/// The timestamp is assigned by the transaction's home site when the
/// transaction starts and is carried on every copy-access request, so all
/// copy-holder sites see a consistent, totally ordered identity for the
/// transaction (needed by TSO, MVTO, wait-die and wound-wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnContext {
    /// The transaction id.
    pub id: TxnId,
    /// The transaction's globally unique timestamp.
    pub ts: Timestamp,
}

impl TxnContext {
    /// Creates a context.
    pub fn new(id: TxnId, ts: Timestamp) -> Self {
        TxnContext { id, ts }
    }
}

/// Outcome of a CCP access request.
#[derive(Debug, Clone, PartialEq)]
pub enum CcDecision {
    /// Access granted. For multi-version protocols the grant may carry the
    /// version the transaction must read instead of the latest committed
    /// copy in storage.
    Granted {
        /// When `Some`, the caller must use this `(value, version)` as the
        /// result of the read instead of consulting the store (MVTO reads an
        /// older version when required).
        value_override: Option<(Value, Version)>,
    },
    /// Access rejected; the transaction must abort with the given cause.
    Rejected(rainbow_common::txn::AbortCause),
}

impl CcDecision {
    /// A plain grant with no value override.
    pub fn granted() -> Self {
        CcDecision::Granted {
            value_override: None,
        }
    }

    /// True if the decision grants access.
    pub fn is_granted(&self) -> bool {
        matches!(self, CcDecision::Granted { .. })
    }

    /// The abort cause when rejected.
    pub fn rejection(&self) -> Option<&rainbow_common::txn::AbortCause> {
        match self {
            CcDecision::Rejected(cause) => Some(cause),
            _ => None,
        }
    }
}

/// The concurrency control protocol interface, one instance per site.
///
/// Call sequence for a transaction at a copy-holder site:
///
/// 1. zero or more [`CcProtocol::read`] / [`CcProtocol::prewrite`] calls as
///    the RCP touches local copies;
/// 2. [`CcProtocol::validate`] when the 2PC participant is about to vote;
/// 3. exactly one of [`CcProtocol::commit`] or [`CcProtocol::abort`], which
///    releases every resource the transaction holds at this site.
pub trait CcProtocol: Send + Sync {
    /// Requests read access to `item`. May block (2PL waits for a lock) up
    /// to the protocol's configured timeout.
    ///
    /// `current` is the committed `(value, version)` of the local copy, which
    /// multi-version protocols use to maintain their version chains.
    fn read(&self, txn: &TxnContext, item: &ItemId, current: (Value, Version)) -> CcDecision;

    /// Requests write (pre-write) access to `item`. The actual new value is
    /// staged in storage by the caller; the CCP only arbitrates access.
    fn prewrite(&self, txn: &TxnContext, item: &ItemId, current: (Value, Version)) -> CcDecision;

    /// Called by the commit participant just before voting YES. Protocols
    /// that can invalidate a transaction after its accesses were granted
    /// (wound-wait) reject here.
    fn validate(&self, txn: &TxnContext) -> CcDecision;

    /// The transaction committed: install protocol-private state (MVTO
    /// versions) and release every lock / reservation.
    ///
    /// `writes` are the `(item, value, version)` triples installed by the
    /// commit at this site.
    fn commit(&self, txn: &TxnContext, writes: &[(ItemId, Value, Version)]);

    /// The transaction aborted: release every lock / reservation.
    fn abort(&self, txn: &TxnContext);

    /// Installs a conservative recovery floor after a crash wiped this
    /// protocol's volatile state: the site's clock value at recovery, below
    /// which no operation may be granted any more. Timestamp protocols lose
    /// their `rts`/`wts` tables in a crash, so without the floor a
    /// recovered site would happily grant an *old* write it had already
    /// ordered a younger read past before crashing — the serializability
    /// hole the chaos harness caught. The floor conservatively restores the
    /// lost rejection surface (every pre-crash grant carried a timestamp
    /// the site's surviving Lamport clock has observed). Default: no-op,
    /// for protocols whose admission does not depend on lost state.
    fn install_recovery_floor(&self, _floor: Timestamp) {}

    /// Human-readable protocol name, used by reports.
    fn name(&self) -> &'static str;

    /// Number of transactions currently holding resources at this site
    /// (locks or pending writes), used by load statistics and tests.
    fn active_transactions(&self) -> usize;
}

/// Builds a CCP instance for a site from the configured kind.
pub fn make_ccp(
    kind: CcpKind,
    deadlock: DeadlockPolicy,
    lock_wait_timeout: Duration,
) -> Arc<dyn CcProtocol> {
    match kind {
        CcpKind::TwoPhaseLocking => Arc::new(crate::two_phase_locking::TwoPhaseLocking::new(
            deadlock,
            lock_wait_timeout,
        )),
        // The lock-wait timeout doubles as the wait budget of reads blocked
        // behind an earlier transaction's pending pre-write (the bounded
        // prewrite-queue of textbook TSO/MVTO).
        CcpKind::TimestampOrdering => {
            Arc::new(crate::tso::TimestampOrdering::new().with_wait_budget(lock_wait_timeout))
        }
        CcpKind::MultiversionTimestampOrdering => Arc::new(
            crate::mvto::MultiversionTimestampOrdering::new().with_wait_budget(lock_wait_timeout),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::txn::AbortCause;
    use rainbow_common::SiteId;

    #[test]
    fn decision_helpers() {
        let g = CcDecision::granted();
        assert!(g.is_granted());
        assert!(g.rejection().is_none());
        let r = CcDecision::Rejected(AbortCause::UserAbort);
        assert!(!r.is_granted());
        assert_eq!(r.rejection(), Some(&AbortCause::UserAbort));
        let o = CcDecision::Granted {
            value_override: Some((Value::Int(1), Version(2))),
        };
        assert!(o.is_granted());
    }

    #[test]
    fn factory_builds_every_protocol() {
        let timeout = Duration::from_millis(10);
        for (kind, name) in [
            (CcpKind::TwoPhaseLocking, "2PL"),
            (CcpKind::TimestampOrdering, "TSO"),
            (CcpKind::MultiversionTimestampOrdering, "MVTO"),
        ] {
            let ccp = make_ccp(kind, DeadlockPolicy::WaitDie, timeout);
            assert_eq!(ccp.name(), name);
            assert_eq!(ccp.active_transactions(), 0);
        }
    }

    #[test]
    fn txn_context_is_copyable() {
        let ctx = TxnContext::new(TxnId::new(SiteId(0), 1), Timestamp::new(5, 0));
        let copy = ctx;
        assert_eq!(ctx, copy);
    }
}
