//! The strict two-phase-locking lock manager.
//!
//! One [`LockManager`] guards the local copies of one Rainbow site. It
//! implements shared/exclusive item locks with upgrades, bounded waiting,
//! and all four deadlock-handling policies exposed in the protocol
//! configuration panel:
//!
//! * **wait-for-graph**: the requester blocks; if adding its wait edges
//!   creates a cycle, the requester is aborted as the deadlock victim;
//! * **wait-die**: an older requester waits, a younger requester is aborted
//!   immediately ("dies");
//! * **wound-wait**: an older requester "wounds" (aborts) younger holders and
//!   then waits; a younger requester simply waits;
//! * **timeout-only**: the requester waits and the wait timeout is the only
//!   deadlock resolution mechanism.
//!
//! Waits are always bounded by the configured lock-wait timeout, whatever the
//! policy, so a distributed deadlock spanning several sites (which no local
//! wait-for graph can see) is eventually broken as well.

use parking_lot::{Condvar, Mutex};
use rainbow_common::protocol::DeadlockPolicy;
use rainbow_common::{ItemId, Timestamp, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Lock modes on an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; incompatible with everything.
    Exclusive,
}

impl LockMode {
    /// Whether a holder in `self` mode allows another transaction to acquire
    /// `other`.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Why a lock request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The request would deadlock (wait-for-graph cycle, or wait-die /
    /// wound-wait ordering said the requester must abort).
    Deadlock,
    /// The wait timed out.
    Timeout,
    /// The transaction was wounded by an older transaction (wound-wait) and
    /// must abort.
    Wounded,
}

#[derive(Debug, Default)]
struct ItemLockState {
    /// Current holders. Invariant: either any number of `Shared` holders or
    /// exactly one `Exclusive` holder.
    holders: Vec<(TxnId, LockMode)>,
    /// Transactions currently waiting on this item (used for fairness-free
    /// bookkeeping and diagnostics).
    waiters: VecDeque<TxnId>,
}

#[derive(Debug, Default)]
struct LockTable {
    items: HashMap<ItemId, ItemLockState>,
    /// Items each transaction holds locks on (for release).
    held: HashMap<TxnId, HashSet<ItemId>>,
    /// Timestamp of every transaction the manager has seen (for wait-die /
    /// wound-wait ordering).
    timestamps: HashMap<TxnId, Timestamp>,
    /// Transactions wounded by an older requester; they must abort.
    wounded: HashSet<TxnId>,
    /// Wait-for edges: waiter → set of holders it waits for.
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
}

impl LockTable {
    /// Whether `txn` can be granted `mode` on `item` right now. Also returns
    /// true for lock re-acquisition / no-op requests.
    fn can_grant(&self, item: &ItemId, txn: TxnId, mode: LockMode) -> bool {
        let Some(state) = self.items.get(item) else {
            return true;
        };
        let held_mode = state
            .holders
            .iter()
            .find(|(holder, _)| *holder == txn)
            .map(|(_, m)| *m);
        match (held_mode, mode) {
            // Already holds an equal or stronger lock.
            (Some(LockMode::Exclusive), _) | (Some(LockMode::Shared), LockMode::Shared) => true,
            // Upgrade: allowed only when it is the sole holder.
            (Some(LockMode::Shared), LockMode::Exclusive) => state.holders.len() == 1,
            // New request: must be compatible with every holder.
            (None, requested) => state
                .holders
                .iter()
                .all(|(_, held)| held.compatible(requested)),
        }
    }

    /// Grants the lock (assumes `can_grant` returned true).
    fn grant(&mut self, item: &ItemId, txn: TxnId, mode: LockMode) {
        let state = self.items.entry(item.clone()).or_default();
        if let Some(entry) = state.holders.iter_mut().find(|(holder, _)| *holder == txn) {
            // Upgrade shared → exclusive if requested.
            if mode == LockMode::Exclusive {
                entry.1 = LockMode::Exclusive;
            }
        } else {
            state.holders.push((txn, mode));
        }
        self.held.entry(txn).or_default().insert(item.clone());
    }

    /// The holders whose locks conflict with `txn` requesting `mode`.
    fn conflicting_holders(&self, item: &ItemId, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        let Some(state) = self.items.get(item) else {
            return Vec::new();
        };
        state
            .holders
            .iter()
            .filter(|(holder, held)| *holder != txn && !held.compatible(mode))
            .map(|(holder, _)| *holder)
            .collect()
    }

    /// Depth-first search for a cycle through `start` in the wait-for graph.
    fn creates_cycle(&self, start: TxnId) -> bool {
        // Does any path from a node `start` waits for lead back to `start`?
        let mut stack: Vec<TxnId> = self
            .waits_for
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut visited: HashSet<TxnId> = HashSet::new();
        while let Some(node) = stack.pop() {
            if node == start {
                return true;
            }
            if !visited.insert(node) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// Counters exposed for the concurrency-control ablation experiments.
#[derive(Debug, Default)]
pub struct LockStats {
    grants: AtomicU64,
    waits: AtomicU64,
    deadlock_aborts: AtomicU64,
    wounds: AtomicU64,
    timeouts: AtomicU64,
}

impl LockStats {
    /// Locks granted (including re-grants and upgrades).
    pub fn grants(&self) -> u64 {
        self.grants.load(Ordering::Relaxed)
    }
    /// Requests that had to wait at least once.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
    /// Requests aborted for deadlock avoidance/detection (wait-die "die",
    /// wait-for-graph victim).
    pub fn deadlock_aborts(&self) -> u64 {
        self.deadlock_aborts.load(Ordering::Relaxed)
    }
    /// Holders wounded by older requesters (wound-wait).
    pub fn wounds(&self) -> u64 {
        self.wounds.load(Ordering::Relaxed)
    }
    /// Requests that gave up on timeout.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }
}

/// The lock manager of one site.
pub struct LockManager {
    policy: DeadlockPolicy,
    timeout: Duration,
    table: Mutex<LockTable>,
    released: Condvar,
    stats: LockStats,
}

impl LockManager {
    /// Creates a lock manager with the given deadlock policy and wait
    /// timeout.
    pub fn new(policy: DeadlockPolicy, timeout: Duration) -> Self {
        LockManager {
            policy,
            timeout,
            table: Mutex::new(LockTable::default()),
            released: Condvar::new(),
            stats: LockStats::default(),
        }
    }

    /// The configured deadlock policy.
    pub fn policy(&self) -> DeadlockPolicy {
        self.policy
    }

    /// The lock statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Whether the transaction has been wounded and must abort.
    pub fn is_wounded(&self, txn: TxnId) -> bool {
        self.table.lock().wounded.contains(&txn)
    }

    /// Acquires `mode` on `item` for `txn` (timestamp `ts`), blocking up to
    /// the configured timeout.
    pub fn acquire(
        &self,
        txn: TxnId,
        ts: Timestamp,
        item: &ItemId,
        mode: LockMode,
    ) -> Result<(), LockError> {
        let deadline = Instant::now() + self.timeout;
        let mut table = self.table.lock();
        table.timestamps.insert(txn, ts);
        let mut waited = false;

        loop {
            if table.wounded.contains(&txn) {
                self.cleanup_waiter(&mut table, txn, item);
                return Err(LockError::Wounded);
            }
            if table.can_grant(item, txn, mode) {
                table.grant(item, txn, mode);
                self.cleanup_waiter(&mut table, txn, item);
                self.stats.grants.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }

            let conflicts = table.conflicting_holders(item, txn, mode);

            // Apply the deadlock policy before (possibly) waiting.
            match self.policy {
                DeadlockPolicy::WaitDie => {
                    // The requester may only wait for *younger* holders
                    // (i.e. the requester must be the oldest). Otherwise it
                    // dies.
                    let older_holder_exists = conflicts.iter().any(|holder| {
                        table
                            .timestamps
                            .get(holder)
                            .map(|holder_ts| *holder_ts < ts)
                            .unwrap_or(false)
                    });
                    if older_holder_exists {
                        self.cleanup_waiter(&mut table, txn, item);
                        self.stats.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                        return Err(LockError::Deadlock);
                    }
                }
                DeadlockPolicy::WoundWait => {
                    // An older requester wounds every younger conflicting
                    // holder; a younger requester just waits.
                    let mut wounded_someone = false;
                    for holder in &conflicts {
                        let younger = table
                            .timestamps
                            .get(holder)
                            .map(|holder_ts| *holder_ts > ts)
                            .unwrap_or(true);
                        if younger && table.wounded.insert(*holder) {
                            wounded_someone = true;
                            self.stats.wounds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if wounded_someone {
                        // Wounded holders discover their fate on their next
                        // CCP call; wake anyone waiting so progress resumes
                        // as soon as they release.
                        self.released.notify_all();
                    }
                }
                DeadlockPolicy::WaitForGraph => {
                    let edges: HashSet<TxnId> = conflicts.iter().copied().collect();
                    table.waits_for.insert(txn, edges);
                    if table.creates_cycle(txn) {
                        table.waits_for.remove(&txn);
                        self.cleanup_waiter(&mut table, txn, item);
                        self.stats.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                        return Err(LockError::Deadlock);
                    }
                }
                DeadlockPolicy::TimeoutOnly => {}
            }

            // Register as a waiter (diagnostics only) and block.
            {
                let state = table.items.entry(item.clone()).or_default();
                if !state.waiters.contains(&txn) {
                    state.waiters.push_back(txn);
                }
            }
            if !waited {
                waited = true;
                self.stats.waits.fetch_add(1, Ordering::Relaxed);
            }
            let timed_out = self
                .released
                .wait_until(&mut table, deadline)
                .timed_out();
            if timed_out {
                self.cleanup_waiter(&mut table, txn, item);
                // One last chance: the lock may have been released exactly at
                // the deadline.
                if table.can_grant(item, txn, mode) && !table.wounded.contains(&txn) {
                    table.grant(item, txn, mode);
                    self.stats.grants.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(LockError::Timeout);
            }
        }
    }

    /// Removes `txn` from the waiter list of `item` and drops its wait-for
    /// edges.
    fn cleanup_waiter(&self, table: &mut LockTable, txn: TxnId, item: &ItemId) {
        if let Some(state) = table.items.get_mut(item) {
            state.waiters.retain(|waiter| *waiter != txn);
        }
        table.waits_for.remove(&txn);
    }

    /// Releases every lock held by `txn` (strict 2PL: called at commit or
    /// abort) and clears its wounded flag and bookkeeping.
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock();
        if let Some(items) = table.held.remove(&txn) {
            for item in items {
                if let Some(state) = table.items.get_mut(&item) {
                    state.holders.retain(|(holder, _)| *holder != txn);
                    if state.holders.is_empty() && state.waiters.is_empty() {
                        table.items.remove(&item);
                    }
                }
            }
        }
        table.wounded.remove(&txn);
        table.waits_for.remove(&txn);
        table.timestamps.remove(&txn);
        // Remove txn from any other wait-for edge sets.
        for edges in table.waits_for.values_mut() {
            edges.remove(&txn);
        }
        drop(table);
        self.released.notify_all();
    }

    /// Locks currently held by `txn` (for tests and diagnostics).
    pub fn held_by(&self, txn: TxnId) -> Vec<ItemId> {
        let table = self.table.lock();
        table
            .held
            .get(&txn)
            .map(|items| items.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of transactions currently holding at least one lock.
    pub fn active_transactions(&self) -> usize {
        self.table.lock().held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;
    use std::sync::Arc;
    use std::thread;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn ts(counter: u64) -> Timestamp {
        Timestamp::new(counter, 0)
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    fn manager(policy: DeadlockPolicy) -> LockManager {
        LockManager::new(policy, Duration::from_millis(100))
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = manager(DeadlockPolicy::WaitForGraph);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Shared).unwrap();
        lm.acquire(txn(2), ts(2), &item("x"), LockMode::Shared).unwrap();
        assert_eq!(lm.active_transactions(), 2);
        assert_eq!(lm.stats().grants(), 2);
        assert_eq!(lm.stats().waits(), 0);
    }

    #[test]
    fn exclusive_conflicts_block_until_release() {
        let lm = Arc::new(manager(DeadlockPolicy::TimeoutOnly));
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive).unwrap();

        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.acquire(txn(2), ts(2), &item("x"), LockMode::Shared));
        thread::sleep(Duration::from_millis(20));
        lm.release_all(txn(1));
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert!(lm.held_by(txn(2)).contains(&item("x")));
        assert!(lm.stats().waits() >= 1);
    }

    #[test]
    fn conflicting_request_times_out() {
        let lm = manager(DeadlockPolicy::TimeoutOnly);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive).unwrap();
        let start = Instant::now();
        let result = lm.acquire(txn(2), ts(2), &item("x"), LockMode::Exclusive);
        assert_eq!(result, Err(LockError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(90));
        assert_eq!(lm.stats().timeouts(), 1);
    }

    #[test]
    fn reacquisition_and_upgrade() {
        let lm = manager(DeadlockPolicy::WaitForGraph);
        let t = txn(1);
        lm.acquire(t, ts(1), &item("x"), LockMode::Shared).unwrap();
        // Re-acquiring the same or weaker lock is a no-op.
        lm.acquire(t, ts(1), &item("x"), LockMode::Shared).unwrap();
        // Upgrade succeeds because t is the sole holder.
        lm.acquire(t, ts(1), &item("x"), LockMode::Exclusive).unwrap();
        // Exclusive holder can "downgrade-request" shared: still granted.
        lm.acquire(t, ts(1), &item("x"), LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(t), vec![item("x")]);

        // Another reader cannot get in now.
        assert_eq!(
            lm.acquire(txn(2), ts(2), &item("x"), LockMode::Shared),
            Err(LockError::Timeout)
        );
    }

    #[test]
    fn upgrade_blocked_by_other_readers_times_out() {
        let lm = manager(DeadlockPolicy::TimeoutOnly);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Shared).unwrap();
        lm.acquire(txn(2), ts(2), &item("x"), LockMode::Shared).unwrap();
        assert_eq!(
            lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive),
            Err(LockError::Timeout)
        );
    }

    #[test]
    fn wait_for_graph_detects_two_party_deadlock() {
        let lm = Arc::new(LockManager::new(
            DeadlockPolicy::WaitForGraph,
            Duration::from_millis(500),
        ));
        // T1 holds x, T2 holds y.
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive).unwrap();
        lm.acquire(txn(2), ts(2), &item("y"), LockMode::Exclusive).unwrap();

        // T1 waits for y in a background thread.
        let lm1 = Arc::clone(&lm);
        let h1 = thread::spawn(move || lm1.acquire(txn(1), ts(1), &item("y"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // T2 requests x: the wait-for graph now has a cycle, T2 is the victim.
        let result = lm.acquire(txn(2), ts(2), &item("x"), LockMode::Exclusive);
        assert_eq!(result, Err(LockError::Deadlock));
        assert!(lm.stats().deadlock_aborts() >= 1);

        // Victim aborts, releasing y; T1's wait completes.
        lm.release_all(txn(2));
        assert_eq!(h1.join().unwrap(), Ok(()));
    }

    #[test]
    fn wait_die_aborts_younger_requesters() {
        let lm = manager(DeadlockPolicy::WaitDie);
        // Older transaction (smaller ts) holds the lock.
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive).unwrap();
        // Younger requester dies immediately.
        let start = Instant::now();
        assert_eq!(
            lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive),
            Err(LockError::Deadlock)
        );
        assert!(start.elapsed() < Duration::from_millis(50), "die must be immediate");
        assert_eq!(lm.stats().deadlock_aborts(), 1);
    }

    #[test]
    fn wait_die_lets_older_requesters_wait() {
        let lm = Arc::new(manager(DeadlockPolicy::WaitDie));
        // Younger transaction holds the lock.
        lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let older = thread::spawn(move || lm2.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        lm.release_all(txn(2));
        assert_eq!(older.join().unwrap(), Ok(()));
    }

    #[test]
    fn wound_wait_wounds_younger_holders() {
        let lm = Arc::new(manager(DeadlockPolicy::WoundWait));
        // Younger transaction holds the lock.
        lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive).unwrap();
        // Older requester wounds it and waits.
        let lm2 = Arc::clone(&lm);
        let older = thread::spawn(move || lm2.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        assert!(lm.is_wounded(txn(2)), "younger holder must be wounded");
        assert!(lm.stats().wounds() >= 1);
        // The wounded holder aborts and releases; the older requester gets the lock.
        lm.release_all(txn(2));
        assert_eq!(older.join().unwrap(), Ok(()));
        // After release_all the wounded flag is cleared for reuse of the id.
        assert!(!lm.is_wounded(txn(2)));
    }

    #[test]
    fn wound_wait_younger_requester_waits_without_wounding() {
        let lm = manager(DeadlockPolicy::WoundWait);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive).unwrap();
        // Younger requester: no wound, just a (timed-out) wait.
        assert_eq!(
            lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive),
            Err(LockError::Timeout)
        );
        assert!(!lm.is_wounded(txn(1)));
        assert_eq!(lm.stats().wounds(), 0);
    }

    #[test]
    fn wounded_transaction_is_rejected_on_next_acquire() {
        let lm = Arc::new(manager(DeadlockPolicy::WoundWait));
        lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let older = thread::spawn(move || lm2.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        // The wounded transaction tries to lock something else: rejected.
        assert_eq!(
            lm.acquire(txn(2), ts(5), &item("y"), LockMode::Shared),
            Err(LockError::Wounded)
        );
        lm.release_all(txn(2));
        assert_eq!(older.join().unwrap(), Ok(()));
    }

    #[test]
    fn release_all_clears_bookkeeping() {
        let lm = manager(DeadlockPolicy::WaitForGraph);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive).unwrap();
        lm.acquire(txn(1), ts(1), &item("y"), LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(txn(1)).len(), 2);
        lm.release_all(txn(1));
        assert!(lm.held_by(txn(1)).is_empty());
        assert_eq!(lm.active_transactions(), 0);
        // Releasing again is harmless.
        lm.release_all(txn(1));
    }

    #[test]
    fn three_way_deadlock_is_broken() {
        let lm = Arc::new(LockManager::new(
            DeadlockPolicy::WaitForGraph,
            Duration::from_millis(800),
        ));
        lm.acquire(txn(1), ts(1), &item("a"), LockMode::Exclusive).unwrap();
        lm.acquire(txn(2), ts(2), &item("b"), LockMode::Exclusive).unwrap();
        lm.acquire(txn(3), ts(3), &item("c"), LockMode::Exclusive).unwrap();

        let lm1 = Arc::clone(&lm);
        let h1 = thread::spawn(move || lm1.acquire(txn(1), ts(1), &item("b"), LockMode::Exclusive));
        let lm2 = Arc::clone(&lm);
        let h2 = thread::spawn(move || lm2.acquire(txn(2), ts(2), &item("c"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        // Closing the cycle: T3 -> a (held by T1). T3 must be chosen as victim.
        let r3 = lm.acquire(txn(3), ts(3), &item("a"), LockMode::Exclusive);
        assert_eq!(r3, Err(LockError::Deadlock));
        lm.release_all(txn(3));
        // T2 can now proceed, then T1.
        assert_eq!(h2.join().unwrap(), Ok(()));
        lm.release_all(txn(2));
        assert_eq!(h1.join().unwrap(), Ok(()));
    }

    #[test]
    fn lock_mode_compatibility_matrix() {
        assert!(LockMode::Shared.compatible(LockMode::Shared));
        assert!(!LockMode::Shared.compatible(LockMode::Exclusive));
        assert!(!LockMode::Exclusive.compatible(LockMode::Shared));
        assert!(!LockMode::Exclusive.compatible(LockMode::Exclusive));
    }
}
