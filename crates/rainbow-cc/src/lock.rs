//! The strict two-phase-locking lock manager.
//!
//! One [`LockManager`] guards the local copies of one Rainbow site. It
//! implements shared/exclusive item locks with upgrades, bounded waiting,
//! and all four deadlock-handling policies exposed in the protocol
//! configuration panel:
//!
//! * **wait-for-graph**: the requester blocks; if adding its wait edges
//!   creates a cycle, the requester is aborted as the deadlock victim;
//! * **wait-die**: an older requester waits, a younger requester is aborted
//!   immediately ("dies");
//! * **wound-wait**: an older requester "wounds" (aborts) younger holders and
//!   then waits; a younger requester simply waits;
//! * **timeout-only**: the requester waits and the wait timeout is the only
//!   deadlock resolution mechanism.
//!
//! Waits are always bounded by the configured lock-wait timeout, whatever the
//! policy, so a distributed deadlock spanning several sites (which no local
//! wait-for graph can see) is eventually broken as well.
//!
//! # Sharding
//!
//! The lock table is split into [`LockManager::shard_count`] independently
//! locked shards keyed by the item's interned hash ([`ItemId::token`]), so
//! concurrent transactions touching different items proceed without
//! contending on one global mutex. Per-item state (holders, waiters) lives
//! entirely inside one shard; cross-item state is factored out:
//!
//! * **timestamps** (wait-die / wound-wait ordering) sit behind a
//!   read-mostly `RwLock`;
//! * **wounded** flags sit behind their own `RwLock`;
//! * the **wait-for graph** has a dedicated mutex, and edge insertion plus
//!   cycle detection happen atomically under it, so deadlock detection
//!   always sees a consistent snapshot of the whole graph even though the
//!   item shards move independently.
//!
//! Lock order is strictly `shard → auxiliary`, and no auxiliary lock is ever
//! held while taking a shard lock, so the layers cannot deadlock each other.

use parking_lot::{Condvar, Mutex, RwLock};
use rainbow_common::protocol::DeadlockPolicy;
use rainbow_common::{FxHashMap, FxHashSet, ItemId, Timestamp, TxnId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Lock modes on an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; incompatible with everything.
    Exclusive,
}

impl LockMode {
    /// Whether a holder in `self` mode allows another transaction to acquire
    /// `other`.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Why a lock request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The request would deadlock (wait-for-graph cycle, or wait-die /
    /// wound-wait ordering said the requester must abort).
    Deadlock,
    /// The wait timed out.
    Timeout,
    /// The transaction was wounded by an older transaction (wound-wait) and
    /// must abort.
    Wounded,
}

#[derive(Debug, Default)]
struct ItemLockState {
    /// Current holders. Invariant: either any number of `Shared` holders or
    /// exactly one `Exclusive` holder.
    holders: Vec<(TxnId, LockMode)>,
    /// Transactions currently waiting on this item (used for fairness-free
    /// bookkeeping and diagnostics).
    waiters: VecDeque<TxnId>,
}

/// How many idle per-item entries a shard caches before sweeping them.
/// Idle entries keep their allocations so steady-state acquire/release
/// cycles on a working set are allocation-free, while the sweep bounds the
/// table so it does not grow monotonically with every item ever touched.
const IDLE_SWEEP_THRESHOLD: usize = 512;

/// One independently locked slice of the lock table.
#[derive(Debug, Default)]
struct ShardTable {
    items: FxHashMap<ItemId, ItemLockState>,
    /// Entries currently idle (no holders, no waiters), kept for reuse
    /// until [`IDLE_SWEEP_THRESHOLD`] triggers a sweep.
    idle_entries: usize,
    /// Number of transactions currently blocked on this shard's condvar.
    /// Release paths skip the condvar notification (a futex syscall) when
    /// nobody is waiting — the overwhelmingly common case.
    blocked_waiters: usize,
}

/// Outcome of a grant attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GrantOutcome {
    /// Granted, and the transaction newly appears in the holder list.
    GrantedNew,
    /// Granted as a re-acquisition or upgrade (already a holder).
    GrantedAgain,
    /// Incompatible with current holders.
    Refused,
}

impl ShardTable {
    /// Grants `mode` on `item` to `txn` when compatible (including
    /// re-acquisition and sole-holder upgrades), in a single map probe.
    fn try_grant(&mut self, item: &ItemId, txn: TxnId, mode: LockMode) -> GrantOutcome {
        let state = match self.items.entry(item.clone()) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                let state = entry.into_mut();
                // A cached idle entry is about to become live again (an
                // idle entry has no holders, so the grant below succeeds).
                if state.holders.is_empty() && state.waiters.is_empty() {
                    self.idle_entries -= 1;
                }
                state
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(ItemLockState::default())
            }
        };
        let held_mode = state
            .holders
            .iter()
            .find(|(holder, _)| *holder == txn)
            .map(|(_, m)| *m);
        let can_grant = match (held_mode, mode) {
            // Already holds an equal or stronger lock.
            (Some(LockMode::Exclusive), _) | (Some(LockMode::Shared), LockMode::Shared) => true,
            // Upgrade: allowed only when it is the sole holder.
            (Some(LockMode::Shared), LockMode::Exclusive) => state.holders.len() == 1,
            // New request: must be compatible with every holder.
            (None, requested) => state
                .holders
                .iter()
                .all(|(_, held)| held.compatible(requested)),
        };
        if !can_grant {
            // The entry is never empty here: incompatibility implies other
            // holders exist, so the probe did not create it.
            return GrantOutcome::Refused;
        }
        match state.holders.iter_mut().find(|(holder, _)| *holder == txn) {
            Some(entry) => {
                // Upgrade shared → exclusive if requested.
                if mode == LockMode::Exclusive {
                    entry.1 = LockMode::Exclusive;
                }
                GrantOutcome::GrantedAgain
            }
            None => {
                state.holders.push((txn, mode));
                GrantOutcome::GrantedNew
            }
        }
    }

    /// The holders whose locks conflict with `txn` requesting `mode`.
    fn conflicting_holders(&self, item: &ItemId, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        let Some(state) = self.items.get(item) else {
            return Vec::new();
        };
        state
            .holders
            .iter()
            .filter(|(holder, held)| *holder != txn && !held.compatible(mode))
            .map(|(holder, _)| *holder)
            .collect()
    }

    /// Removes `txn` from the waiter list of `item`, marking the entry idle
    /// when removing the last waiter leaves neither holders nor waiters.
    /// The idle transition only happens when a waiter was actually removed
    /// — otherwise an already-idle cached entry would be counted twice and
    /// corrupt the idle-entry accounting.
    fn remove_waiter(&mut self, item: &ItemId, txn: TxnId) {
        if let Some(state) = self.items.get_mut(item) {
            if let Some(pos) = state.waiters.iter().position(|waiter| *waiter == txn) {
                state.waiters.remove(pos);
                if state.holders.is_empty() && state.waiters.is_empty() {
                    self.idle_entries += 1;
                    self.maybe_sweep();
                }
            }
        }
    }

    /// Sweeps cached idle entries once too many accumulate, bounding the
    /// table's footprint without paying an allocation + deallocation on
    /// every routine acquire/release cycle.
    fn maybe_sweep(&mut self) {
        if self.idle_entries > IDLE_SWEEP_THRESHOLD {
            self.items
                .retain(|_, state| !(state.holders.is_empty() && state.waiters.is_empty()));
            self.idle_entries = 0;
        }
    }

    /// Per-item entries currently live (holding locks or queueing waiters).
    fn live_entries(&self) -> usize {
        self.items.len() - self.idle_entries
    }
}

/// Cross-shard wait-for graph, guarded by one mutex so that edge insertion
/// and cycle detection are atomic: detection always sees a consistent
/// snapshot even while the item shards move concurrently.
#[derive(Debug, Default)]
struct WaitGraph {
    /// Waiter → set of holders it waits for.
    edges: FxHashMap<TxnId, FxHashSet<TxnId>>,
}

impl WaitGraph {
    /// Depth-first search for a cycle through `start`.
    fn creates_cycle(&self, start: TxnId) -> bool {
        let mut stack: Vec<TxnId> = self
            .edges
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut visited: FxHashSet<TxnId> = FxHashSet::default();
        while let Some(node) = stack.pop() {
            if node == start {
                return true;
            }
            if !visited.insert(node) {
                continue;
            }
            if let Some(next) = self.edges.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// Counters exposed for the concurrency-control ablation experiments.
#[derive(Debug, Default)]
pub struct LockStats {
    grants: AtomicU64,
    waits: AtomicU64,
    deadlock_aborts: AtomicU64,
    wounds: AtomicU64,
    timeouts: AtomicU64,
}

impl LockStats {
    /// Locks granted (including re-grants and upgrades).
    pub fn grants(&self) -> u64 {
        self.grants.load(Ordering::Relaxed)
    }
    /// Requests that had to wait at least once.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
    /// Requests aborted for deadlock avoidance/detection (wait-die "die",
    /// wait-for-graph victim).
    pub fn deadlock_aborts(&self) -> u64 {
        self.deadlock_aborts.load(Ordering::Relaxed)
    }
    /// Holders wounded by older requesters (wound-wait).
    pub fn wounds(&self) -> u64 {
        self.wounds.load(Ordering::Relaxed)
    }
    /// Requests that gave up on timeout.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }
}

/// One shard: its slice of the lock table plus the condvar its waiters
/// block on.
#[derive(Debug, Default)]
struct Shard {
    table: Mutex<ShardTable>,
    released: Condvar,
}

/// Default number of lock-table shards (the "shard count knob"; see
/// [`LockManager::with_shards`]).
pub const DEFAULT_LOCK_SHARDS: usize = 16;

/// Number of per-transaction metadata shards (keyed by transaction hash, so
/// concurrent transactions do not serialize on one bookkeeping mutex).
const TXN_META_SHARDS: usize = 16;

/// Per-transaction bookkeeping: its timestamp (wait-die / wound-wait
/// ordering) and the exact items it holds locks on, so release walks only
/// the shards that actually hold something. Written at grant time inside
/// the granting shard's critical section, which keeps it consistent with
/// the holder lists.
#[derive(Debug, Clone)]
struct TxnMeta {
    ts: Timestamp,
    held: Vec<ItemId>,
}

/// The lock manager of one site.
pub struct LockManager {
    policy: DeadlockPolicy,
    timeout: Duration,
    shards: Box<[Shard]>,
    /// Per-transaction metadata, sharded by transaction hash.
    txn_meta: Box<[Mutex<FxHashMap<TxnId, TxnMeta>>]>,
    /// Transactions wounded by an older requester; they must abort. Only
    /// ever populated under the wound-wait policy, so the other policies
    /// never touch this lock on their fast path.
    wounded: RwLock<FxHashSet<TxnId>>,
    /// The cross-shard wait-for graph (used by `WaitForGraph` only).
    wait_graph: Mutex<WaitGraph>,
    stats: LockStats,
}

impl LockManager {
    /// Creates a lock manager with the given deadlock policy, wait timeout
    /// and the default shard count.
    pub fn new(policy: DeadlockPolicy, timeout: Duration) -> Self {
        Self::with_shards(policy, timeout, DEFAULT_LOCK_SHARDS)
    }

    /// Creates a lock manager with an explicit shard count (rounded up to at
    /// least 1). More shards reduce contention between transactions touching
    /// different items; one shard reproduces the classic single-mutex table.
    pub fn with_shards(policy: DeadlockPolicy, timeout: Duration, shards: usize) -> Self {
        let count = shards.max(1);
        LockManager {
            policy,
            timeout,
            shards: (0..count).map(|_| Shard::default()).collect(),
            txn_meta: (0..TXN_META_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            wounded: RwLock::new(FxHashSet::default()),
            wait_graph: Mutex::new(WaitGraph::default()),
            stats: LockStats::default(),
        }
    }

    /// The configured deadlock policy.
    pub fn policy(&self) -> DeadlockPolicy {
        self.policy
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The lock statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// The shard index an item belongs to, chosen by the item's interned
    /// hash (deterministic across runs).
    fn shard_index(&self, item: &ItemId) -> usize {
        (item.token() as usize) % self.shards.len()
    }

    /// The metadata shard of a transaction.
    fn meta_shard(&self, txn: TxnId) -> &Mutex<FxHashMap<TxnId, TxnMeta>> {
        let key = txn.home.index() as u64 ^ txn.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.txn_meta[(key as usize) % TXN_META_SHARDS]
    }

    /// Looks up the recorded timestamp of a transaction.
    fn timestamp_of(&self, txn: TxnId) -> Option<Timestamp> {
        self.meta_shard(txn).lock().get(&txn).map(|meta| meta.ts)
    }

    /// Records that `txn` (timestamp `ts`) newly holds a lock on `item`.
    /// Called with the granting shard's lock held; metadata always nests
    /// inside shard locks, never the reverse, so a racing `release_all`
    /// either sees this grant in the metadata or the grant happens after
    /// its shard pass and re-creates the entry for the next release.
    fn note_held(&self, txn: TxnId, ts: Timestamp, item: &ItemId) {
        let mut meta = self.meta_shard(txn).lock();
        let entry = meta.entry(txn).or_insert_with(|| TxnMeta {
            ts,
            held: Vec::new(),
        });
        entry.held.push(item.clone());
    }

    /// Whether the transaction has been wounded and must abort.
    pub fn is_wounded(&self, txn: TxnId) -> bool {
        self.wounded.read().contains(&txn)
    }

    /// Fast-path wound check: only wound-wait ever populates the set.
    fn wounded_now(&self, txn: TxnId) -> bool {
        self.policy == DeadlockPolicy::WoundWait && self.wounded.read().contains(&txn)
    }

    /// Drops the wait-for edges of `txn`.
    fn clear_wait_edges(&self, txn: TxnId) {
        if self.policy == DeadlockPolicy::WaitForGraph {
            self.wait_graph.lock().edges.remove(&txn);
        }
    }

    /// Acquires `mode` on `item` for `txn` (timestamp `ts`), blocking up to
    /// the configured timeout.
    pub fn acquire(
        &self,
        txn: TxnId,
        ts: Timestamp,
        item: &ItemId,
        mode: LockMode,
    ) -> Result<(), LockError> {
        let deadline = Instant::now() + self.timeout;
        let shard_index = self.shard_index(item);
        let shard = &self.shards[shard_index];
        let mut table = shard.table.lock();
        let mut waited = false;

        loop {
            if self.wounded_now(txn) {
                table.remove_waiter(item, txn);
                self.clear_wait_edges(txn);
                return Err(LockError::Wounded);
            }
            match table.try_grant(item, txn, mode) {
                GrantOutcome::Refused => {}
                outcome => {
                    if outcome == GrantOutcome::GrantedNew {
                        // Record the grant while still inside the shard
                        // critical section, so it is visible to the next
                        // `release_all` even if a racing release already ran.
                        self.note_held(txn, ts, item);
                    }
                    if waited {
                        table.remove_waiter(item, txn);
                        self.clear_wait_edges(txn);
                    }
                    self.stats.grants.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }

            let conflicts = table.conflicting_holders(item, txn, mode);

            // Apply the deadlock policy before (possibly) waiting. Auxiliary
            // locks (timestamps / wounded / wait graph) nest *inside* the
            // shard lock, never the other way around.
            match self.policy {
                DeadlockPolicy::WaitDie => {
                    // The requester may only wait for *younger* holders
                    // (i.e. the requester must be the oldest). Otherwise it
                    // dies.
                    let older_holder_exists = conflicts.iter().any(|holder| {
                        self.timestamp_of(*holder)
                            .map(|holder_ts| holder_ts < ts)
                            .unwrap_or(false)
                    });
                    if older_holder_exists {
                        table.remove_waiter(item, txn);
                        self.stats.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                        return Err(LockError::Deadlock);
                    }
                }
                DeadlockPolicy::WoundWait => {
                    // An older requester wounds every younger conflicting
                    // holder; a younger requester just waits.
                    let mut wounded_someone = false;
                    for holder in &conflicts {
                        let younger = self
                            .timestamp_of(*holder)
                            .map(|holder_ts| holder_ts > ts)
                            .unwrap_or(true);
                        if younger && self.wounded.write().insert(*holder) {
                            wounded_someone = true;
                            self.stats.wounds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if wounded_someone {
                        // Wounded holders discover their fate on their next
                        // CCP call; wake waiters on *every* shard (a wounded
                        // transaction may be blocked on any item) so progress
                        // resumes as soon as they release. Notifying a
                        // condvar without holding its shard's mutex is safe —
                        // woken waiters re-check their predicate.
                        for other in self.shards.iter() {
                            other.released.notify_all();
                        }
                    }
                }
                DeadlockPolicy::WaitForGraph => {
                    // Insert this waiter's edges and run cycle detection in
                    // one critical section: the check sees a consistent
                    // global graph regardless of shard concurrency.
                    let mut graph = self.wait_graph.lock();
                    graph.edges.insert(txn, conflicts.iter().copied().collect());
                    if graph.creates_cycle(txn) {
                        graph.edges.remove(&txn);
                        drop(graph);
                        table.remove_waiter(item, txn);
                        self.stats.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                        return Err(LockError::Deadlock);
                    }
                }
                DeadlockPolicy::TimeoutOnly => {}
            }

            // Register as a waiter (diagnostics only) and block.
            {
                let state = table.items.entry(item.clone()).or_default();
                if !state.waiters.contains(&txn) {
                    state.waiters.push_back(txn);
                }
            }
            if !waited {
                waited = true;
                self.stats.waits.fetch_add(1, Ordering::Relaxed);
            }
            // Under wound-wait the wound flag lives outside this shard's
            // mutex, so a wound + notify issued between our wounded check
            // and parking here could be lost; waiting in bounded slices
            // guarantees the flag is re-checked promptly regardless.
            let slice = if self.policy == DeadlockPolicy::WoundWait {
                deadline.min(Instant::now() + Duration::from_millis(25))
            } else {
                deadline
            };
            table.blocked_waiters += 1;
            let _slice_expired = shard.released.wait_until(&mut table, slice).timed_out();
            table.blocked_waiters -= 1;
            let timed_out = Instant::now() >= deadline;
            if timed_out {
                table.remove_waiter(item, txn);
                self.clear_wait_edges(txn);
                // One last chance: the lock may have been released exactly at
                // the deadline.
                if !self.wounded_now(txn) {
                    match table.try_grant(item, txn, mode) {
                        GrantOutcome::Refused => {}
                        outcome => {
                            if outcome == GrantOutcome::GrantedNew {
                                self.note_held(txn, ts, item);
                            }
                            self.stats.grants.fetch_add(1, Ordering::Relaxed);
                            return Ok(());
                        }
                    }
                }
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(LockError::Timeout);
            }
        }
    }

    /// Releases every lock held by `txn` (strict 2PL: called at commit or
    /// abort) and clears its wounded flag and bookkeeping. Only the shards
    /// of items the transaction actually holds are visited (tracked in the
    /// per-transaction metadata written at grant time).
    pub fn release_all(&self, txn: TxnId) {
        // Unknown transaction (released twice, or never granted anything):
        // nothing can be held anywhere.
        let held = match self.meta_shard(txn).lock().remove(&txn) {
            Some(meta) => meta.held,
            None => Vec::new(),
        };
        for item in &held {
            let shard = &self.shards[self.shard_index(item)];
            let mut table = shard.table.lock();
            if let Some(state) = table.items.get_mut(item) {
                // Index-based removal instead of an O(n) retain scan; a
                // transaction appears at most once per holder list.
                if let Some(pos) = state.holders.iter().position(|(holder, _)| *holder == txn) {
                    state.holders.swap_remove(pos);
                }
                if state.holders.is_empty() && state.waiters.is_empty() {
                    table.idle_entries += 1;
                    table.maybe_sweep();
                }
            }
            let somebody_waits = table.blocked_waiters > 0;
            drop(table);
            if somebody_waits {
                shard.released.notify_all();
            }
        }
        if self.policy == DeadlockPolicy::WoundWait {
            self.wounded.write().remove(&txn);
        }
        if self.policy == DeadlockPolicy::WaitForGraph {
            let mut graph = self.wait_graph.lock();
            graph.edges.remove(&txn);
            // Remove txn from any other wait-for edge sets.
            for edges in graph.edges.values_mut() {
                edges.remove(&txn);
            }
        }
    }

    /// Locks currently held by `txn` (for tests and diagnostics).
    pub fn held_by(&self, txn: TxnId) -> Vec<ItemId> {
        self.meta_shard(txn)
            .lock()
            .get(&txn)
            .map(|meta| meta.held.clone())
            .unwrap_or_default()
    }

    /// Number of transactions currently holding at least one lock.
    pub fn active_transactions(&self) -> usize {
        self.txn_meta.iter().map(|shard| shard.lock().len()).sum()
    }

    /// Total number of *live* per-item entries (holding locks or queueing
    /// waiters) across all shards. Idle entries are cached for reuse up to
    /// a bounded threshold and periodically swept, so the table's footprint
    /// does not grow monotonically with every item ever touched.
    pub fn item_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.table.lock().live_entries())
            .sum()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;
    use std::sync::Arc;
    use std::thread;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn ts(counter: u64) -> Timestamp {
        Timestamp::new(counter, 0)
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    fn manager(policy: DeadlockPolicy) -> LockManager {
        LockManager::new(policy, Duration::from_millis(100))
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = manager(DeadlockPolicy::WaitForGraph);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Shared)
            .unwrap();
        lm.acquire(txn(2), ts(2), &item("x"), LockMode::Shared)
            .unwrap();
        assert_eq!(lm.active_transactions(), 2);
        assert_eq!(lm.stats().grants(), 2);
        assert_eq!(lm.stats().waits(), 0);
    }

    #[test]
    fn exclusive_conflicts_block_until_release() {
        let lm = Arc::new(manager(DeadlockPolicy::TimeoutOnly));
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive)
            .unwrap();

        let lm2 = Arc::clone(&lm);
        let waiter =
            thread::spawn(move || lm2.acquire(txn(2), ts(2), &item("x"), LockMode::Shared));
        thread::sleep(Duration::from_millis(20));
        lm.release_all(txn(1));
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert!(lm.held_by(txn(2)).contains(&item("x")));
        assert!(lm.stats().waits() >= 1);
    }

    #[test]
    fn conflicting_request_times_out() {
        let lm = manager(DeadlockPolicy::TimeoutOnly);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive)
            .unwrap();
        let start = Instant::now();
        let result = lm.acquire(txn(2), ts(2), &item("x"), LockMode::Exclusive);
        assert_eq!(result, Err(LockError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(90));
        assert_eq!(lm.stats().timeouts(), 1);
    }

    #[test]
    fn reacquisition_and_upgrade() {
        let lm = manager(DeadlockPolicy::WaitForGraph);
        let t = txn(1);
        lm.acquire(t, ts(1), &item("x"), LockMode::Shared).unwrap();
        // Re-acquiring the same or weaker lock is a no-op.
        lm.acquire(t, ts(1), &item("x"), LockMode::Shared).unwrap();
        // Upgrade succeeds because t is the sole holder.
        lm.acquire(t, ts(1), &item("x"), LockMode::Exclusive)
            .unwrap();
        // Exclusive holder can "downgrade-request" shared: still granted.
        lm.acquire(t, ts(1), &item("x"), LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(t), vec![item("x")]);

        // Another reader cannot get in now.
        assert_eq!(
            lm.acquire(txn(2), ts(2), &item("x"), LockMode::Shared),
            Err(LockError::Timeout)
        );
    }

    #[test]
    fn upgrade_blocked_by_other_readers_times_out() {
        let lm = manager(DeadlockPolicy::TimeoutOnly);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Shared)
            .unwrap();
        lm.acquire(txn(2), ts(2), &item("x"), LockMode::Shared)
            .unwrap();
        assert_eq!(
            lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive),
            Err(LockError::Timeout)
        );
    }

    #[test]
    fn wait_for_graph_detects_two_party_deadlock() {
        let lm = Arc::new(LockManager::new(
            DeadlockPolicy::WaitForGraph,
            Duration::from_millis(500),
        ));
        // T1 holds x, T2 holds y.
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive)
            .unwrap();
        lm.acquire(txn(2), ts(2), &item("y"), LockMode::Exclusive)
            .unwrap();

        // T1 waits for y in a background thread.
        let lm1 = Arc::clone(&lm);
        let h1 = thread::spawn(move || lm1.acquire(txn(1), ts(1), &item("y"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // T2 requests x: the wait-for graph now has a cycle, T2 is the victim.
        let result = lm.acquire(txn(2), ts(2), &item("x"), LockMode::Exclusive);
        assert_eq!(result, Err(LockError::Deadlock));
        assert!(lm.stats().deadlock_aborts() >= 1);

        // Victim aborts, releasing y; T1's wait completes.
        lm.release_all(txn(2));
        assert_eq!(h1.join().unwrap(), Ok(()));
    }

    #[test]
    fn wait_die_aborts_younger_requesters() {
        let lm = manager(DeadlockPolicy::WaitDie);
        // Older transaction (smaller ts) holds the lock.
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive)
            .unwrap();
        // Younger requester dies immediately.
        let start = Instant::now();
        assert_eq!(
            lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive),
            Err(LockError::Deadlock)
        );
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "die must be immediate"
        );
        assert_eq!(lm.stats().deadlock_aborts(), 1);
    }

    #[test]
    fn wait_die_lets_older_requesters_wait() {
        let lm = Arc::new(manager(DeadlockPolicy::WaitDie));
        // Younger transaction holds the lock.
        lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive)
            .unwrap();
        let lm2 = Arc::clone(&lm);
        let older =
            thread::spawn(move || lm2.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        lm.release_all(txn(2));
        assert_eq!(older.join().unwrap(), Ok(()));
    }

    #[test]
    fn wound_wait_wounds_younger_holders() {
        let lm = Arc::new(manager(DeadlockPolicy::WoundWait));
        // Younger transaction holds the lock.
        lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive)
            .unwrap();
        // Older requester wounds it and waits.
        let lm2 = Arc::clone(&lm);
        let older =
            thread::spawn(move || lm2.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        assert!(lm.is_wounded(txn(2)), "younger holder must be wounded");
        assert!(lm.stats().wounds() >= 1);
        // The wounded holder aborts and releases; the older requester gets the lock.
        lm.release_all(txn(2));
        assert_eq!(older.join().unwrap(), Ok(()));
        // After release_all the wounded flag is cleared for reuse of the id.
        assert!(!lm.is_wounded(txn(2)));
    }

    #[test]
    fn wound_wait_younger_requester_waits_without_wounding() {
        let lm = manager(DeadlockPolicy::WoundWait);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive)
            .unwrap();
        // Younger requester: no wound, just a (timed-out) wait.
        assert_eq!(
            lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive),
            Err(LockError::Timeout)
        );
        assert!(!lm.is_wounded(txn(1)));
        assert_eq!(lm.stats().wounds(), 0);
    }

    #[test]
    fn wounded_transaction_is_rejected_on_next_acquire() {
        let lm = Arc::new(manager(DeadlockPolicy::WoundWait));
        lm.acquire(txn(2), ts(5), &item("x"), LockMode::Exclusive)
            .unwrap();
        let lm2 = Arc::clone(&lm);
        let older =
            thread::spawn(move || lm2.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        // The wounded transaction tries to lock something else: rejected.
        assert_eq!(
            lm.acquire(txn(2), ts(5), &item("y"), LockMode::Shared),
            Err(LockError::Wounded)
        );
        lm.release_all(txn(2));
        assert_eq!(older.join().unwrap(), Ok(()));
    }

    #[test]
    fn release_all_clears_bookkeeping() {
        let lm = manager(DeadlockPolicy::WaitForGraph);
        lm.acquire(txn(1), ts(1), &item("x"), LockMode::Exclusive)
            .unwrap();
        lm.acquire(txn(1), ts(1), &item("y"), LockMode::Shared)
            .unwrap();
        assert_eq!(lm.held_by(txn(1)).len(), 2);
        lm.release_all(txn(1));
        assert!(lm.held_by(txn(1)).is_empty());
        assert_eq!(lm.active_transactions(), 0);
        // Releasing again is harmless.
        lm.release_all(txn(1));
    }

    #[test]
    fn three_way_deadlock_is_broken() {
        let lm = Arc::new(LockManager::new(
            DeadlockPolicy::WaitForGraph,
            Duration::from_millis(800),
        ));
        lm.acquire(txn(1), ts(1), &item("a"), LockMode::Exclusive)
            .unwrap();
        lm.acquire(txn(2), ts(2), &item("b"), LockMode::Exclusive)
            .unwrap();
        lm.acquire(txn(3), ts(3), &item("c"), LockMode::Exclusive)
            .unwrap();

        let lm1 = Arc::clone(&lm);
        let h1 = thread::spawn(move || lm1.acquire(txn(1), ts(1), &item("b"), LockMode::Exclusive));
        let lm2 = Arc::clone(&lm);
        let h2 = thread::spawn(move || lm2.acquire(txn(2), ts(2), &item("c"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        // Closing the cycle: T3 -> a (held by T1). T3 must be chosen as victim.
        let r3 = lm.acquire(txn(3), ts(3), &item("a"), LockMode::Exclusive);
        assert_eq!(r3, Err(LockError::Deadlock));
        lm.release_all(txn(3));
        // T2 can now proceed, then T1.
        assert_eq!(h2.join().unwrap(), Ok(()));
        lm.release_all(txn(2));
        assert_eq!(h1.join().unwrap(), Ok(()));
    }

    #[test]
    fn lock_mode_compatibility_matrix() {
        assert!(LockMode::Shared.compatible(LockMode::Shared));
        assert!(!LockMode::Shared.compatible(LockMode::Exclusive));
        assert!(!LockMode::Exclusive.compatible(LockMode::Shared));
        assert!(!LockMode::Exclusive.compatible(LockMode::Exclusive));
    }
}
