//! # rainbow-cc
//!
//! Concurrency control protocols (CCP) of the Rainbow reproduction.
//!
//! Section 2.1 of the paper: Rainbow supports "Concurrency Control Protocols
//! (CCP) including Two-phase locking (2PL) and Timestamp ordering", and
//! Section 5 suggests multi-version timestamp ordering as a term-project
//! extension. All three are implemented here behind one trait,
//! [`CcProtocol`], so the site runtime (and a student replacing a protocol)
//! can swap them with a single configuration change — mirroring the paper's
//! goal that protocols be replaceable "with minimum system-wide
//! modifications".
//!
//! * [`lock`] — the strict two-phase-locking lock manager: shared/exclusive
//!   locks, upgrades, wait queues with timeouts, and the deadlock handling
//!   policies (wait-for-graph victim selection, wait-die, wound-wait,
//!   timeout-only);
//! * [`two_phase_locking`] — the 2PL [`CcProtocol`] built on the lock
//!   manager;
//! * [`tso`] — basic timestamp ordering;
//! * [`mvto`] — multi-version timestamp ordering;
//! * [`types`] — the protocol trait, grant/decision types and the factory
//!   that builds a CCP from a [`rainbow_common::protocol::CcpKind`].
//!
//! The CCP instance lives *per site* and manages that site's local copies,
//! exactly as in Rainbow where remote copies are "read ... or pre-written
//! ... through CCP" at the copy-holder site.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lock;
pub mod mvto;
pub mod tso;
pub mod two_phase_locking;
pub mod types;

pub use lock::{LockError, LockManager, LockMode, DEFAULT_LOCK_SHARDS};
pub use mvto::MultiversionTimestampOrdering;
pub use tso::TimestampOrdering;
pub use two_phase_locking::TwoPhaseLocking;
pub use types::{make_ccp, CcDecision, CcProtocol, TxnContext};
