//! Basic timestamp ordering (TSO).
//!
//! Every transaction carries a unique timestamp assigned at its home site.
//! Each item copy records the largest timestamp of any transaction that read
//! it (`rts`) and the largest timestamp of any committed write (`wts`).
//! Operations arriving "too late" — i.e. with a timestamp smaller than what
//! the item has already seen — are rejected and the transaction aborts (and
//! is typically restarted by the workload generator with a new, larger
//! timestamp).
//!
//! Rules implemented (the classic Bernstein/Goodman formulation adapted to
//! deferred writes through 2PC):
//!
//! * `read(x, ts)`  : rejected if `ts < wts(x)`. While another transaction
//!   holds a pending pre-write with a smaller timestamp, the read *waits*
//!   (bounded by the wait budget) for it to resolve — serving it early
//!   would observe the value that write is about to supersede while being
//!   ordered after it, a lost update. Granted reads set
//!   `rts(x) = max(rts(x), ts)`;
//! * `write(x, ts)` : rejected if `ts < rts(x)` or `ts < wts(x)`; otherwise a
//!   pending pre-write is recorded;
//! * `commit`       : pending writes become committed, `wts(x) = max(wts(x), ts)`;
//! * `abort`        : pending writes vanish.
//!
//! The pending-write wait on reads is the bounded form of the textbook
//! prewrite/read queue: a reader ordered after a pending write waits for
//! that write's decision instead of either observing the superseded value
//! (a lost update — found by the chaos harness) or aborting immediately.
//! The wait budget keeps the protocol bounded, and the implementation
//! simple enough for students to replace (a Rainbow design goal).

use crate::types::{CcDecision, CcProtocol, TxnContext};
use parking_lot::Mutex;
use rainbow_common::txn::AbortCause;
use rainbow_common::{ItemId, Timestamp, TxnId, Value, Version};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

#[derive(Debug, Default, Clone)]
struct ItemTimestamps {
    /// Largest timestamp of any granted read.
    rts: Timestamp,
    /// Largest timestamp of any committed write.
    wts: Timestamp,
    /// Pending (prepared but uncommitted) writes: txn → its timestamp.
    pending_writes: BTreeMap<TxnId, Timestamp>,
}

/// Basic timestamp-ordering concurrency control for one site.
#[derive(Debug, Default)]
pub struct TimestampOrdering {
    items: Mutex<HashMap<ItemId, ItemTimestamps>>,
    /// Items touched by each active transaction (so abort/commit can clean
    /// pending entries without scanning every item).
    touched: Mutex<HashMap<TxnId, HashSet<ItemId>>>,
    /// Post-recovery admission floor (see
    /// [`CcProtocol::install_recovery_floor`]): operations below it are
    /// rejected because the pre-crash `rts`/`wts` they might conflict with
    /// were lost with the volatile tables.
    floor: Mutex<Timestamp>,
    /// How long a read blocked behind an earlier transaction's pending
    /// pre-write may wait for that write to resolve before being rejected.
    /// Zero (the [`Default`]) rejects immediately.
    wait_budget: std::time::Duration,
}

impl TimestampOrdering {
    /// Creates a TSO instance (with a zero wait budget: blocked reads are
    /// rejected immediately; see [`TimestampOrdering::with_wait_budget`]).
    pub fn new() -> Self {
        TimestampOrdering::default()
    }

    /// Lets reads blocked behind an earlier pending pre-write wait up to
    /// `budget` for it to resolve (the prewrite-queue behaviour of textbook
    /// TSO, bounded so the protocol stays non-blocking overall).
    pub fn with_wait_budget(mut self, budget: std::time::Duration) -> Self {
        self.wait_budget = budget;
        self
    }

    /// The `(rts, wts)` pair currently recorded for an item (zero timestamps
    /// if the item has never been touched). Exposed for tests.
    pub fn item_timestamps(&self, item: &ItemId) -> (Timestamp, Timestamp) {
        let items = self.items.lock();
        items
            .get(item)
            .map(|entry| (entry.rts, entry.wts))
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO))
    }

    fn track(&self, txn: TxnId, item: &ItemId) {
        self.touched
            .lock()
            .entry(txn)
            .or_default()
            .insert(item.clone());
    }
}

impl CcProtocol for TimestampOrdering {
    fn read(&self, txn: &TxnContext, item: &ItemId, _current: (Value, Version)) -> CcDecision {
        if txn.ts < *self.floor.lock() {
            return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                item: item.clone(),
                rejected: txn.ts,
            });
        }
        // A read must not slip past a pending pre-write staged by a
        // smaller-timestamped *other* transaction: it would observe the
        // value that write is about to supersede while being ordered after
        // the writer — the lost-update the chaos harness reproduces when
        // two read-modify-writes race. (The transaction's own pending
        // pre-write never blocks its own read: read-for-update issues the
        // pre-write first.) Such a read waits, bounded by the wait budget,
        // for the pending write to resolve — the prewrite-queue behaviour
        // of textbook TSO — and is rejected when the budget runs out.
        let deadline = Instant::now() + self.wait_budget;
        loop {
            {
                let mut items = self.items.lock();
                let entry = items.entry(item.clone()).or_default();
                // Reading behind a committed write is too late no matter
                // what the pending writes resolve to (wts never decreases),
                // so reject before deciding to wait.
                if txn.ts < entry.wts {
                    return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                        item: item.clone(),
                        rejected: txn.ts,
                    });
                }
                let earliest_other_pending = entry
                    .pending_writes
                    .iter()
                    .filter(|(id, _)| **id != txn.id)
                    .map(|(_, ts)| *ts)
                    .min();
                match earliest_other_pending {
                    Some(pending) if txn.ts > pending => {} // wait below
                    _ => {
                        entry.rts = entry.rts.max(txn.ts);
                        drop(items);
                        self.track(txn.id, item);
                        return CcDecision::granted();
                    }
                }
            }
            if Instant::now() >= deadline {
                return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                    item: item.clone(),
                    rejected: txn.ts,
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    fn prewrite(&self, txn: &TxnContext, item: &ItemId, _current: (Value, Version)) -> CcDecision {
        if txn.ts < *self.floor.lock() {
            return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                item: item.clone(),
                rejected: txn.ts,
            });
        }
        let mut items = self.items.lock();
        let entry = items.entry(item.clone()).or_default();
        if txn.ts < entry.rts || txn.ts < entry.wts {
            return CcDecision::Rejected(AbortCause::CcpTimestampViolation {
                item: item.clone(),
                rejected: txn.ts,
            });
        }
        entry.pending_writes.insert(txn.id, txn.ts);
        drop(items);
        self.track(txn.id, item);
        CcDecision::granted()
    }

    fn validate(&self, _txn: &TxnContext) -> CcDecision {
        // TSO decides at access time; nothing can invalidate a transaction
        // between its last access and its vote.
        CcDecision::granted()
    }

    fn commit(&self, txn: &TxnContext, writes: &[(ItemId, Value, Version)]) {
        let mut items = self.items.lock();
        for (item, _, _) in writes {
            let entry = items.entry(item.clone()).or_default();
            entry.pending_writes.remove(&txn.id);
            entry.wts = entry.wts.max(txn.ts);
        }
        // Clear any pending pre-writes on items that were staged but not in
        // the final write set (defensive; normally identical).
        if let Some(touched) = self.touched.lock().remove(&txn.id) {
            for item in touched {
                if let Some(entry) = items.get_mut(&item) {
                    entry.pending_writes.remove(&txn.id);
                }
            }
        }
    }

    fn abort(&self, txn: &TxnContext) {
        let mut items = self.items.lock();
        if let Some(touched) = self.touched.lock().remove(&txn.id) {
            for item in touched {
                if let Some(entry) = items.get_mut(&item) {
                    entry.pending_writes.remove(&txn.id);
                }
            }
        }
    }

    fn install_recovery_floor(&self, floor: Timestamp) {
        let mut current = self.floor.lock();
        *current = (*current).max(floor);
    }

    fn name(&self) -> &'static str {
        "TSO"
    }

    fn active_transactions(&self) -> usize {
        self.touched.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn ctx(seq: u64, ts: u64) -> TxnContext {
        TxnContext::new(TxnId::new(SiteId(0), seq), Timestamp::new(ts, 0))
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    fn current() -> (Value, Version) {
        (Value::Int(0), Version(0))
    }

    #[test]
    fn reads_and_writes_in_timestamp_order_are_granted() {
        let cc = TimestampOrdering::new();
        let t1 = ctx(1, 10);
        let t2 = ctx(2, 20);
        assert!(cc.read(&t1, &item("x"), current()).is_granted());
        assert!(cc.prewrite(&t2, &item("x"), current()).is_granted());
        cc.commit(&t2, &[(item("x"), Value::Int(1), Version(1))]);
        let (rts, wts) = cc.item_timestamps(&item("x"));
        assert_eq!(rts, Timestamp::new(10, 0));
        assert_eq!(wts, Timestamp::new(20, 0));
    }

    #[test]
    fn late_read_behind_committed_write_is_rejected() {
        let cc = TimestampOrdering::new();
        let writer = ctx(1, 50);
        assert!(cc.prewrite(&writer, &item("x"), current()).is_granted());
        cc.commit(&writer, &[(item("x"), Value::Int(1), Version(1))]);
        // A reader with an older timestamp arrives afterwards: too late.
        let late_reader = ctx(2, 10);
        let d = cc.read(&late_reader, &item("x"), current());
        assert!(matches!(
            d.rejection(),
            Some(AbortCause::CcpTimestampViolation { .. })
        ));
    }

    #[test]
    fn late_write_behind_read_is_rejected() {
        let cc = TimestampOrdering::new();
        let reader = ctx(1, 50);
        assert!(cc.read(&reader, &item("x"), current()).is_granted());
        let late_writer = ctx(2, 10);
        let d = cc.prewrite(&late_writer, &item("x"), current());
        assert!(!d.is_granted());
    }

    #[test]
    fn late_write_behind_committed_write_is_rejected() {
        let cc = TimestampOrdering::new();
        let w1 = ctx(1, 50);
        assert!(cc.prewrite(&w1, &item("x"), current()).is_granted());
        cc.commit(&w1, &[(item("x"), Value::Int(1), Version(1))]);
        let w2 = ctx(2, 20);
        assert!(!cc.prewrite(&w2, &item("x"), current()).is_granted());
    }

    #[test]
    fn read_for_update_cannot_bypass_an_earlier_pending_write() {
        // Two read-modify-writes race: T1 (ts 10) pre-writes x, then T2
        // (ts 20) pre-writes x and issues the read half of its
        // read-for-update. T2's own pending entry must NOT hide T1's: the
        // value T2 would read is the one T1 is about to supersede, yet T2
        // serializes after T1 — the classic lost update.
        let cc = TimestampOrdering::new();
        let t1 = ctx(1, 10);
        let t2 = ctx(2, 20);
        assert!(cc.prewrite(&t1, &item("x"), current()).is_granted());
        assert!(cc.prewrite(&t2, &item("x"), current()).is_granted());
        assert!(!cc.read(&t2, &item("x"), current()).is_granted());
        // Once T1 is decided (here: aborted), T2's own pending write alone
        // never blocks its read.
        cc.abort(&t1);
        assert!(cc.read(&t2, &item("x"), current()).is_granted());
    }

    #[test]
    fn blocked_read_waits_for_the_pending_write_to_resolve() {
        use std::sync::Arc;
        use std::time::Duration;
        let cc = Arc::new(TimestampOrdering::new().with_wait_budget(Duration::from_millis(500)));
        let writer = ctx(1, 10);
        assert!(cc.prewrite(&writer, &item("x"), current()).is_granted());
        let cc2 = Arc::clone(&cc);
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cc2.commit(&ctx(1, 10), &[(item("x"), Value::Int(1), Version(1))]);
        });
        // The ts-20 reader blocks behind the ts-10 pending write, then
        // proceeds once it commits (20 > wts 10).
        assert!(cc.read(&ctx(2, 20), &item("x"), current()).is_granted());
        resolver.join().unwrap();
    }

    #[test]
    fn read_past_pending_write_of_earlier_txn_is_rejected() {
        let cc = TimestampOrdering::new();
        let writer = ctx(1, 10);
        assert!(cc.prewrite(&writer, &item("x"), current()).is_granted());
        // A later reader must not read the (still old) committed value and
        // thereby miss the pending earlier write.
        let reader = ctx(2, 20);
        assert!(!cc.read(&reader, &item("x"), current()).is_granted());
        // The writer itself may still read its own item.
        assert!(cc.read(&writer, &item("x"), current()).is_granted());
        // Once the writer commits, the later reader would be behind wts and
        // still rejected; a fresh, even later reader after commit succeeds.
        cc.commit(&writer, &[(item("x"), Value::Int(1), Version(1))]);
        let reader3 = ctx(3, 30);
        assert!(cc.read(&reader3, &item("x"), current()).is_granted());
    }

    #[test]
    fn recovery_floor_fences_pre_crash_timestamps() {
        let cc = TimestampOrdering::new();
        assert!(cc.read(&ctx(1, 10), &item("x"), current()).is_granted());
        cc.install_recovery_floor(Timestamp::new(40, 0));
        // Below the floor: rejected even though the (rebuilt, empty) tables
        // would have granted them — the pre-crash rts/wts they might
        // conflict with are gone.
        assert!(!cc.prewrite(&ctx(2, 30), &item("x"), current()).is_granted());
        assert!(!cc.read(&ctx(3, 39), &item("y"), current()).is_granted());
        // At and above the floor, normal rules apply.
        assert!(cc.read(&ctx(4, 40), &item("y"), current()).is_granted());
        assert!(cc.prewrite(&ctx(5, 41), &item("x"), current()).is_granted());
        // The floor never moves backwards.
        cc.install_recovery_floor(Timestamp::new(5, 0));
        assert!(!cc.read(&ctx(6, 20), &item("z"), current()).is_granted());
    }

    #[test]
    fn abort_discards_pending_writes() {
        let cc = TimestampOrdering::new();
        let writer = ctx(1, 10);
        assert!(cc.prewrite(&writer, &item("x"), current()).is_granted());
        assert_eq!(cc.active_transactions(), 1);
        cc.abort(&writer);
        assert_eq!(cc.active_transactions(), 0);
        // After the abort, a later reader is no longer blocked by the pending
        // write.
        let reader = ctx(2, 20);
        assert!(cc.read(&reader, &item("x"), current()).is_granted());
        // wts is unchanged by the aborted write.
        let (_, wts) = cc.item_timestamps(&item("x"));
        assert_eq!(wts, Timestamp::ZERO);
    }

    #[test]
    fn validate_always_grants() {
        let cc = TimestampOrdering::new();
        assert!(cc.validate(&ctx(1, 1)).is_granted());
        assert_eq!(cc.name(), "TSO");
    }

    #[test]
    fn rts_advances_monotonically() {
        let cc = TimestampOrdering::new();
        assert!(cc.read(&ctx(1, 30), &item("x"), current()).is_granted());
        assert!(cc.read(&ctx(2, 10), &item("x"), current()).is_granted());
        let (rts, _) = cc.item_timestamps(&item("x"));
        assert_eq!(rts, Timestamp::new(30, 0), "rts must not move backwards");
    }

    #[test]
    fn blind_write_then_commit_updates_wts_per_item() {
        let cc = TimestampOrdering::new();
        let t = ctx(1, 5);
        assert!(cc.prewrite(&t, &item("a"), current()).is_granted());
        assert!(cc.prewrite(&t, &item("b"), current()).is_granted());
        cc.commit(
            &t,
            &[
                (item("a"), Value::Int(1), Version(1)),
                (item("b"), Value::Int(2), Version(1)),
            ],
        );
        assert_eq!(cc.item_timestamps(&item("a")).1, Timestamp::new(5, 0));
        assert_eq!(cc.item_timestamps(&item("b")).1, Timestamp::new(5, 0));
        assert_eq!(cc.active_transactions(), 0);
    }
}
