//! Strict two-phase locking as a [`CcProtocol`].
//!
//! Reads take shared locks, pre-writes take exclusive locks, and every lock
//! is held until the transaction's commit or abort reaches this site (strict
//! 2PL), which is exactly what two-phase commit needs: data written by a
//! prepared transaction stays locked until the decision arrives.

use crate::lock::{LockError, LockManager, LockMode};
use crate::types::{CcDecision, CcProtocol, TxnContext};
use rainbow_common::protocol::DeadlockPolicy;
use rainbow_common::txn::AbortCause;
use rainbow_common::{ItemId, Value, Version};
use std::time::Duration;

/// The 2PL concurrency-control protocol for one site.
pub struct TwoPhaseLocking {
    locks: LockManager,
}

impl TwoPhaseLocking {
    /// Creates a 2PL instance with the given deadlock policy and lock-wait
    /// timeout.
    pub fn new(policy: DeadlockPolicy, lock_wait_timeout: Duration) -> Self {
        TwoPhaseLocking {
            locks: LockManager::new(policy, lock_wait_timeout),
        }
    }

    /// The underlying lock manager (exposed for statistics and tests).
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    fn map_error(error: LockError, item: &ItemId) -> AbortCause {
        match error {
            LockError::Deadlock | LockError::Wounded => {
                AbortCause::CcpDeadlock { item: item.clone() }
            }
            LockError::Timeout => AbortCause::CcpLockConflict {
                item: item.clone(),
                holder: None,
            },
        }
    }

    fn acquire(&self, txn: &TxnContext, item: &ItemId, mode: LockMode) -> CcDecision {
        match self.locks.acquire(txn.id, txn.ts, item, mode) {
            Ok(()) => CcDecision::granted(),
            Err(error) => CcDecision::Rejected(Self::map_error(error, item)),
        }
    }
}

impl CcProtocol for TwoPhaseLocking {
    fn read(&self, txn: &TxnContext, item: &ItemId, _current: (Value, Version)) -> CcDecision {
        self.acquire(txn, item, LockMode::Shared)
    }

    fn prewrite(&self, txn: &TxnContext, item: &ItemId, _current: (Value, Version)) -> CcDecision {
        self.acquire(txn, item, LockMode::Exclusive)
    }

    fn validate(&self, txn: &TxnContext) -> CcDecision {
        if self.locks.is_wounded(txn.id) {
            return CcDecision::Rejected(AbortCause::CcpDeadlock {
                item: ItemId::new("<wounded>"),
            });
        }
        // A participant being prepared always holds at least one lock: every
        // access this site granted is locked until the decision (strict
        // 2PL). Holding nothing means the grants were lost — the site
        // crashed and recovered with a fresh lock table, or the janitor
        // already released the transaction — and other transactions may have
        // locked the same items since, so vouching for the old accesses
        // would break serializability (the chaos harness catches exactly
        // this as a cycle). Vote NO instead.
        if self.locks.held_by(txn.id).is_empty() {
            return CcDecision::Rejected(AbortCause::CcpLockConflict {
                item: ItemId::new("<grants-lost>"),
                holder: None,
            });
        }
        CcDecision::granted()
    }

    fn commit(&self, txn: &TxnContext, _writes: &[(ItemId, Value, Version)]) {
        self.locks.release_all(txn.id);
    }

    fn abort(&self, txn: &TxnContext) {
        self.locks.release_all(txn.id);
    }

    fn name(&self) -> &'static str {
        "2PL"
    }

    fn active_transactions(&self) -> usize {
        self.locks.active_transactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::{SiteId, Timestamp, TxnId};
    use std::sync::Arc;
    use std::thread;

    fn ctx(seq: u64, ts: u64) -> TxnContext {
        TxnContext::new(TxnId::new(SiteId(0), seq), Timestamp::new(ts, 0))
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    fn current() -> (Value, Version) {
        (Value::Int(0), Version(0))
    }

    fn tpl(policy: DeadlockPolicy) -> TwoPhaseLocking {
        TwoPhaseLocking::new(policy, Duration::from_millis(80))
    }

    #[test]
    fn readers_share_writers_exclude() {
        let cc = tpl(DeadlockPolicy::WaitForGraph);
        let t1 = ctx(1, 1);
        let t2 = ctx(2, 2);
        assert!(cc.read(&t1, &item("x"), current()).is_granted());
        assert!(cc.read(&t2, &item("x"), current()).is_granted());
        // A writer cannot get in while readers hold the item.
        let t3 = ctx(3, 3);
        let decision = cc.prewrite(&t3, &item("x"), current());
        assert!(!decision.is_granted());
        assert!(matches!(
            decision.rejection(),
            Some(AbortCause::CcpLockConflict { .. })
        ));
    }

    #[test]
    fn commit_releases_locks_for_waiting_writers() {
        let cc = Arc::new(tpl(DeadlockPolicy::TimeoutOnly));
        let t1 = ctx(1, 1);
        assert!(cc.prewrite(&t1, &item("x"), current()).is_granted());

        let cc2 = Arc::clone(&cc);
        let writer = thread::spawn(move || {
            let t2 = ctx(2, 2);
            cc2.prewrite(&t2, &item("x"), current())
        });
        thread::sleep(Duration::from_millis(20));
        cc.commit(&t1, &[(item("x"), Value::Int(1), Version(1))]);
        assert!(writer.join().unwrap().is_granted());
    }

    #[test]
    fn abort_also_releases_locks() {
        let cc = tpl(DeadlockPolicy::WaitForGraph);
        let t1 = ctx(1, 1);
        assert!(cc.prewrite(&t1, &item("x"), current()).is_granted());
        assert_eq!(cc.active_transactions(), 1);
        cc.abort(&t1);
        assert_eq!(cc.active_transactions(), 0);
        let t2 = ctx(2, 2);
        assert!(cc.prewrite(&t2, &item("x"), current()).is_granted());
    }

    #[test]
    fn deadlock_is_reported_as_ccp_deadlock() {
        let cc = Arc::new(TwoPhaseLocking::new(
            DeadlockPolicy::WaitForGraph,
            Duration::from_millis(300),
        ));
        let t1 = ctx(1, 1);
        let t2 = ctx(2, 2);
        assert!(cc.prewrite(&t1, &item("x"), current()).is_granted());
        assert!(cc.prewrite(&t2, &item("y"), current()).is_granted());
        let cc1 = Arc::clone(&cc);
        let h = thread::spawn(move || cc1.prewrite(&ctx(1, 1), &item("y"), current()));
        thread::sleep(Duration::from_millis(30));
        let d = cc.prewrite(&t2, &item("x"), current());
        assert!(matches!(
            d.rejection(),
            Some(AbortCause::CcpDeadlock { .. })
        ));
        cc.abort(&t2);
        assert!(h.join().unwrap().is_granted());
    }

    #[test]
    fn wounded_transaction_fails_validation() {
        let cc = Arc::new(tpl(DeadlockPolicy::WoundWait));
        let young = ctx(2, 10);
        let old = ctx(1, 1);
        assert!(cc.prewrite(&young, &item("x"), current()).is_granted());
        // Older transaction wounds the younger holder (it will wait/timeout in
        // a background thread; we only care about the wound side-effect).
        let cc2 = Arc::clone(&cc);
        let h = thread::spawn(move || cc2.prewrite(&ctx(1, 1), &item("x"), current()));
        thread::sleep(Duration::from_millis(20));
        assert!(!cc.validate(&young).is_granted());
        cc.abort(&young);
        assert!(h.join().unwrap().is_granted());
        // The winning older transaction — now actually holding the lock,
        // as any prepared participant does — validates cleanly.
        assert!(cc.validate(&old).is_granted());
    }

    #[test]
    fn validate_passes_for_unwounded_transactions() {
        let cc = tpl(DeadlockPolicy::WaitForGraph);
        let t1 = ctx(1, 1);
        assert!(cc.read(&t1, &item("x"), current()).is_granted());
        assert!(cc.validate(&t1).is_granted());
        assert_eq!(cc.name(), "2PL");
    }

    #[test]
    fn validate_rejects_transactions_holding_no_resources() {
        let cc = tpl(DeadlockPolicy::WaitForGraph);
        let t1 = ctx(1, 1);
        // No lock held at this site (grants lost in a crash, or released by
        // the janitor): the site must not vouch for the old accesses.
        assert!(!cc.validate(&t1).is_granted());
        // Once an access is granted (and still held), validation passes.
        assert!(cc.read(&t1, &item("x"), current()).is_granted());
        assert!(cc.validate(&t1).is_granted());
        // After release (decision applied), a late re-validation fails again.
        cc.commit(&t1, &[]);
        assert!(!cc.validate(&t1).is_granted());
    }

    #[test]
    fn read_then_upgrade_to_write_on_same_item() {
        let cc = tpl(DeadlockPolicy::WaitForGraph);
        let t1 = ctx(1, 1);
        assert!(cc.read(&t1, &item("x"), current()).is_granted());
        assert!(cc.prewrite(&t1, &item("x"), current()).is_granted());
        cc.commit(&t1, &[(item("x"), Value::Int(5), Version(1))]);
        assert_eq!(cc.active_transactions(), 0);
    }
}
