//! The commit participant state machine (copy-holder side).

use crate::types::{Decision, Vote};
use rainbow_common::protocol::AcpKind;
use rainbow_common::{SiteId, TxnId};

/// Phase of a participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticipantState {
    /// Still executing operations; no prepare request seen yet.
    Working,
    /// Voted YES and is waiting for the decision (the 2PC *uncertainty
    /// window*: the participant is blocked while in this state).
    Prepared,
    /// 3PC only: received PRE-COMMIT; the decision is guaranteed to be
    /// commit.
    PreCommitted,
    /// Decision commit applied.
    Committed,
    /// Decision abort applied (or voted NO).
    Aborted,
}

/// What the caller must do after feeding an event to the participant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParticipantAction {
    /// Send this vote back to the coordinator. A YES vote must only be sent
    /// after the caller has force-logged a prepare record.
    SendVote(Vote),
    /// 3PC: acknowledge the PRE-COMMIT.
    SendPreCommitAck,
    /// Apply the decision locally (install or discard staged writes, release
    /// CCP resources) and acknowledge it to the coordinator.
    ApplyAndAck(Decision),
    /// The participant is blocked waiting for the decision (2PC uncertainty
    /// window after a timeout): it must run the termination protocol.
    RunTermination,
    /// Nothing to do.
    Wait,
}

/// The participant state machine for one transaction at one site.
#[derive(Debug)]
pub struct Participant {
    txn: TxnId,
    coordinator: SiteId,
    protocol: AcpKind,
    state: ParticipantState,
}

impl Participant {
    /// Creates a participant for `txn` whose coordinator lives at
    /// `coordinator`.
    pub fn new(txn: TxnId, coordinator: SiteId, protocol: AcpKind) -> Self {
        Participant {
            txn,
            coordinator,
            protocol,
            state: ParticipantState::Working,
        }
    }

    /// The transaction.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The coordinator's site.
    pub fn coordinator(&self) -> SiteId {
        self.coordinator
    }

    /// Current phase.
    pub fn state(&self) -> ParticipantState {
        self.state
    }

    /// True while the participant is in the 2PC uncertainty window.
    pub fn is_blocked(&self) -> bool {
        self.state == ParticipantState::Prepared
    }

    /// Handles the PREPARE / CAN-COMMIT request. `can_commit` is the local
    /// verdict (CCP validation passed and the prepare record was forced).
    pub fn on_prepare(&mut self, can_commit: bool) -> ParticipantAction {
        if self.state != ParticipantState::Working {
            // Duplicate prepare: re-send the vote implied by our state.
            return match self.state {
                ParticipantState::Prepared | ParticipantState::PreCommitted => {
                    ParticipantAction::SendVote(Vote::Yes)
                }
                ParticipantState::Aborted => ParticipantAction::SendVote(Vote::No),
                _ => ParticipantAction::Wait,
            };
        }
        if can_commit {
            self.state = ParticipantState::Prepared;
            ParticipantAction::SendVote(Vote::Yes)
        } else {
            self.state = ParticipantState::Aborted;
            ParticipantAction::SendVote(Vote::No)
        }
    }

    /// Handles the 3PC PRE-COMMIT message.
    pub fn on_precommit(&mut self) -> ParticipantAction {
        match (self.protocol, self.state) {
            (AcpKind::ThreePhaseCommit, ParticipantState::Prepared) => {
                self.state = ParticipantState::PreCommitted;
                ParticipantAction::SendPreCommitAck
            }
            // Duplicate pre-commit.
            (AcpKind::ThreePhaseCommit, ParticipantState::PreCommitted) => {
                ParticipantAction::SendPreCommitAck
            }
            _ => ParticipantAction::Wait,
        }
    }

    /// Handles the coordinator's decision.
    pub fn on_decision(&mut self, decision: Decision) -> ParticipantAction {
        match self.state {
            ParticipantState::Working
            | ParticipantState::Prepared
            | ParticipantState::PreCommitted => {
                self.state = match decision {
                    Decision::Commit => ParticipantState::Committed,
                    Decision::Abort => ParticipantState::Aborted,
                };
                ParticipantAction::ApplyAndAck(decision)
            }
            // Already decided: re-ack idempotently (the coordinator may have
            // retransmitted because our ack was lost).
            ParticipantState::Committed => ParticipantAction::ApplyAndAck(Decision::Commit),
            ParticipantState::Aborted => ParticipantAction::ApplyAndAck(Decision::Abort),
        }
    }

    /// The participant timed out waiting for the coordinator.
    ///
    /// * Working: no prepare ever arrived — unilateral abort is safe;
    /// * Prepared under 2PC: **blocked**; the caller must run the
    ///   termination protocol (ask peers / wait for the coordinator);
    /// * Prepared under 3PC: abort (no pre-commit was received, so no
    ///   operational participant can have committed);
    /// * PreCommitted under 3PC: commit (every operational participant is
    ///   pre-committed, the decision can only be commit);
    /// * already decided: nothing.
    pub fn on_timeout(&mut self) -> ParticipantAction {
        match (self.protocol, self.state) {
            (_, ParticipantState::Working) => {
                self.state = ParticipantState::Aborted;
                ParticipantAction::ApplyAndAck(Decision::Abort)
            }
            (AcpKind::TwoPhaseCommit, ParticipantState::Prepared) => {
                ParticipantAction::RunTermination
            }
            (AcpKind::ThreePhaseCommit, ParticipantState::Prepared) => {
                self.state = ParticipantState::Aborted;
                ParticipantAction::ApplyAndAck(Decision::Abort)
            }
            (AcpKind::ThreePhaseCommit, ParticipantState::PreCommitted) => {
                self.state = ParticipantState::Committed;
                ParticipantAction::ApplyAndAck(Decision::Commit)
            }
            _ => ParticipantAction::Wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn participant(protocol: AcpKind) -> Participant {
        Participant::new(TxnId::new(SiteId(1), 7), SiteId(0), protocol)
    }

    #[test]
    fn two_pc_commit_path() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        assert_eq!(p.state(), ParticipantState::Working);
        assert_eq!(p.on_prepare(true), ParticipantAction::SendVote(Vote::Yes));
        assert_eq!(p.state(), ParticipantState::Prepared);
        assert!(p.is_blocked());
        assert_eq!(
            p.on_decision(Decision::Commit),
            ParticipantAction::ApplyAndAck(Decision::Commit)
        );
        assert_eq!(p.state(), ParticipantState::Committed);
        assert!(!p.is_blocked());
    }

    #[test]
    fn vote_no_goes_straight_to_aborted() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        assert_eq!(p.on_prepare(false), ParticipantAction::SendVote(Vote::No));
        assert_eq!(p.state(), ParticipantState::Aborted);
        // The abort decision later is idempotent.
        assert_eq!(
            p.on_decision(Decision::Abort),
            ParticipantAction::ApplyAndAck(Decision::Abort)
        );
    }

    #[test]
    fn duplicate_prepare_resends_the_same_vote() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        p.on_prepare(true);
        assert_eq!(p.on_prepare(true), ParticipantAction::SendVote(Vote::Yes));
        let mut p = participant(AcpKind::TwoPhaseCommit);
        p.on_prepare(false);
        assert_eq!(p.on_prepare(true), ParticipantAction::SendVote(Vote::No));
    }

    #[test]
    fn duplicate_decision_reacks_idempotently() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        p.on_prepare(true);
        p.on_decision(Decision::Commit);
        assert_eq!(
            p.on_decision(Decision::Commit),
            ParticipantAction::ApplyAndAck(Decision::Commit)
        );
        assert_eq!(p.state(), ParticipantState::Committed);
    }

    #[test]
    fn working_timeout_is_a_unilateral_abort() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        assert_eq!(
            p.on_timeout(),
            ParticipantAction::ApplyAndAck(Decision::Abort)
        );
        assert_eq!(p.state(), ParticipantState::Aborted);
    }

    #[test]
    fn two_pc_prepared_timeout_blocks() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        p.on_prepare(true);
        assert_eq!(p.on_timeout(), ParticipantAction::RunTermination);
        // Still prepared, still blocked.
        assert_eq!(p.state(), ParticipantState::Prepared);
        assert!(p.is_blocked());
    }

    #[test]
    fn three_pc_prepared_timeout_aborts() {
        let mut p = participant(AcpKind::ThreePhaseCommit);
        p.on_prepare(true);
        assert_eq!(
            p.on_timeout(),
            ParticipantAction::ApplyAndAck(Decision::Abort)
        );
        assert_eq!(p.state(), ParticipantState::Aborted);
    }

    #[test]
    fn three_pc_precommitted_timeout_commits() {
        let mut p = participant(AcpKind::ThreePhaseCommit);
        p.on_prepare(true);
        assert_eq!(p.on_precommit(), ParticipantAction::SendPreCommitAck);
        assert_eq!(p.state(), ParticipantState::PreCommitted);
        assert_eq!(
            p.on_timeout(),
            ParticipantAction::ApplyAndAck(Decision::Commit)
        );
        assert_eq!(p.state(), ParticipantState::Committed);
    }

    #[test]
    fn precommit_is_ignored_under_two_pc_and_when_not_prepared() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        p.on_prepare(true);
        assert_eq!(p.on_precommit(), ParticipantAction::Wait);
        let mut p = participant(AcpKind::ThreePhaseCommit);
        assert_eq!(p.on_precommit(), ParticipantAction::Wait);
    }

    #[test]
    fn duplicate_precommit_is_reacked() {
        let mut p = participant(AcpKind::ThreePhaseCommit);
        p.on_prepare(true);
        p.on_precommit();
        assert_eq!(p.on_precommit(), ParticipantAction::SendPreCommitAck);
    }

    #[test]
    fn timeout_after_decision_is_a_no_op() {
        let mut p = participant(AcpKind::TwoPhaseCommit);
        p.on_prepare(true);
        p.on_decision(Decision::Commit);
        assert_eq!(p.on_timeout(), ParticipantAction::Wait);
    }

    #[test]
    fn accessors() {
        let p = participant(AcpKind::TwoPhaseCommit);
        assert_eq!(p.txn(), TxnId::new(SiteId(1), 7));
        assert_eq!(p.coordinator(), SiteId(0));
    }
}
