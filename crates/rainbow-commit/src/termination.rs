//! The cooperative termination protocol.
//!
//! A 2PC participant that is blocked in its uncertainty window (prepared,
//! coordinator unreachable) may ask the other participants what they know.
//! The classic rules, implemented by [`resolve_by_peers`]:
//!
//! * if any peer has **committed** or **aborted**, adopt that decision;
//! * if any peer has **not voted yet** (still `Working`), the coordinator
//!   cannot have decided commit — abort is safe (and that peer will abort
//!   too);
//! * if every reachable peer is also prepared (or pre-committed without a
//!   decision under 3PC we treat conservatively), nobody knows — the
//!   participant stays **blocked** and must wait for the coordinator to
//!   recover.

use crate::participant::ParticipantState;
use crate::types::Decision;

/// Applies the cooperative termination rules to the states reported by the
/// reachable peers. Returns the decision to adopt, or `None` when the
/// participant remains blocked.
pub fn resolve_by_peers(peer_states: &[ParticipantState]) -> Option<Decision> {
    // Rule 1: somebody already knows the decision.
    if peer_states.contains(&ParticipantState::Committed) {
        return Some(Decision::Commit);
    }
    if peer_states.contains(&ParticipantState::Aborted) {
        return Some(Decision::Abort);
    }
    // Rule 2: somebody has not voted — commit cannot have been decided.
    if peer_states.contains(&ParticipantState::Working) {
        return Some(Decision::Abort);
    }
    // Rule 3: everyone reachable is uncertain too.
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_peer_propagates_commit() {
        let peers = [ParticipantState::Prepared, ParticipantState::Committed];
        assert_eq!(resolve_by_peers(&peers), Some(Decision::Commit));
    }

    #[test]
    fn aborted_peer_propagates_abort() {
        let peers = [ParticipantState::Prepared, ParticipantState::Aborted];
        assert_eq!(resolve_by_peers(&peers), Some(Decision::Abort));
    }

    #[test]
    fn unvoted_peer_allows_abort() {
        let peers = [ParticipantState::Working, ParticipantState::Prepared];
        assert_eq!(resolve_by_peers(&peers), Some(Decision::Abort));
    }

    #[test]
    fn all_prepared_peers_stay_blocked() {
        let peers = [ParticipantState::Prepared, ParticipantState::Prepared];
        assert_eq!(resolve_by_peers(&peers), None);
    }

    #[test]
    fn no_reachable_peers_stays_blocked() {
        assert_eq!(resolve_by_peers(&[]), None);
    }

    #[test]
    fn precommitted_peers_alone_do_not_unblock_conservatively() {
        // A pre-committed peer guarantees the decision will be commit under
        // 3PC, but our conservative rule set only adopts decisions that were
        // actually applied; blocked is the safe answer for mixed stacks.
        let peers = [ParticipantState::PreCommitted, ParticipantState::Prepared];
        assert_eq!(resolve_by_peers(&peers), None);
    }

    #[test]
    fn committed_beats_working_if_both_present() {
        // (Should not happen in a correct run, but the rule order must pick
        // the applied decision rather than inferring an abort.)
        let peers = [ParticipantState::Working, ParticipantState::Committed];
        assert_eq!(resolve_by_peers(&peers), Some(Decision::Commit));
    }
}
