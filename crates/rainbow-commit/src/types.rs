//! Shared vocabulary of the atomic commitment protocols.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A participant's vote in the voting phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// The participant can commit (it has force-logged a prepare record).
    Yes,
    /// The participant cannot commit; the transaction must abort.
    No,
}

impl Vote {
    /// True for [`Vote::Yes`].
    pub fn is_yes(self) -> bool {
        matches!(self, Vote::Yes)
    }
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vote::Yes => write!(f, "YES"),
            Vote::No => write!(f, "NO"),
        }
    }
}

/// The coordinator's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Commit everywhere.
    Commit,
    /// Abort everywhere.
    Abort,
}

impl Decision {
    /// True for [`Decision::Commit`].
    pub fn is_commit(self) -> bool {
        matches!(self, Decision::Commit)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Commit => write!(f, "COMMIT"),
            Decision::Abort => write!(f, "ABORT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_predicates_and_display() {
        assert!(Vote::Yes.is_yes());
        assert!(!Vote::No.is_yes());
        assert_eq!(Vote::Yes.to_string(), "YES");
        assert_eq!(Vote::No.to_string(), "NO");
    }

    #[test]
    fn decision_predicates_and_display() {
        assert!(Decision::Commit.is_commit());
        assert!(!Decision::Abort.is_commit());
        assert_eq!(Decision::Commit.to_string(), "COMMIT");
        assert_eq!(Decision::Abort.to_string(), "ABORT");
    }
}
