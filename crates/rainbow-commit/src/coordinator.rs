//! The commit coordinator state machine (home-site side).
//!
//! The machine is message-agnostic: the caller feeds it votes,
//! acknowledgements and timeouts, and it answers with the
//! [`CoordinatorAction`]s the caller must perform (send messages, force log
//! records, complete the transaction). Running 2PC or 3PC is a constructor
//! parameter; 3PC inserts the pre-commit round between voting and the final
//! decision distribution.

use crate::types::{Decision, Vote};
use rainbow_common::protocol::AcpKind;
use rainbow_common::{SiteId, TxnId};
use std::collections::{BTreeMap, BTreeSet};

/// Phase of the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinatorState {
    /// Waiting for votes (after sending PREPARE / CAN-COMMIT).
    CollectingVotes,
    /// 3PC only: waiting for PRE-COMMIT acknowledgements.
    CollectingPreCommitAcks,
    /// Decision made and distributed; waiting for final acknowledgements.
    CollectingAcks,
    /// Protocol finished (all acks in, or aborted with acks in).
    Completed,
}

/// What the caller must do after feeding an event to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinatorAction {
    /// Send a PREPARE (2PC) / CAN-COMMIT (3PC) request to these participants.
    SendPrepare(Vec<SiteId>),
    /// 3PC only: send PRE-COMMIT to these participants.
    SendPreCommit(Vec<SiteId>),
    /// Force the decision to the coordinator log, then send it to these
    /// participants.
    SendDecision(Decision, Vec<SiteId>),
    /// Every acknowledgement has arrived: the transaction is finished at the
    /// coordinator with this decision.
    Complete(Decision),
    /// Nothing to do yet (waiting for more events).
    Wait,
}

/// The coordinator state machine for one transaction.
#[derive(Debug)]
pub struct Coordinator {
    txn: TxnId,
    protocol: AcpKind,
    participants: BTreeSet<SiteId>,
    votes: BTreeMap<SiteId, Vote>,
    precommit_acks: BTreeSet<SiteId>,
    acks: BTreeSet<SiteId>,
    decision: Option<Decision>,
    state: CoordinatorState,
}

impl Coordinator {
    /// Creates a coordinator for `txn` over the given participant set.
    ///
    /// The participant set may include the coordinator's own site; the
    /// caller is expected to deliver its own vote/ack locally like any other
    /// participant (that is how Rainbow counts messages: local calls are
    /// free, remote calls go through the simulator).
    pub fn new(
        txn: TxnId,
        protocol: AcpKind,
        participants: impl IntoIterator<Item = SiteId>,
    ) -> Self {
        Coordinator {
            txn,
            protocol,
            participants: participants.into_iter().collect(),
            votes: BTreeMap::new(),
            precommit_acks: BTreeSet::new(),
            acks: BTreeSet::new(),
            decision: None,
            state: CoordinatorState::CollectingVotes,
        }
    }

    /// The transaction this coordinator handles.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The protocol being run.
    pub fn protocol(&self) -> AcpKind {
        self.protocol
    }

    /// Current phase.
    pub fn state(&self) -> CoordinatorState {
        self.state
    }

    /// The decision, once made.
    pub fn decision(&self) -> Option<Decision> {
        self.decision
    }

    /// The participant set.
    pub fn participants(&self) -> Vec<SiteId> {
        self.participants.iter().copied().collect()
    }

    /// Starts the protocol: returns the initial PREPARE broadcast. An empty
    /// participant set (a purely local, read-only transaction) commits
    /// immediately.
    pub fn start(&mut self) -> CoordinatorAction {
        if self.participants.is_empty() {
            self.decision = Some(Decision::Commit);
            self.state = CoordinatorState::Completed;
            return CoordinatorAction::Complete(Decision::Commit);
        }
        CoordinatorAction::SendPrepare(self.participants())
    }

    /// Records a vote. When the last vote arrives the machine moves to the
    /// decision (2PC) or the pre-commit round (3PC, on unanimous YES).
    pub fn on_vote(&mut self, from: SiteId, vote: Vote) -> CoordinatorAction {
        if self.state != CoordinatorState::CollectingVotes || !self.participants.contains(&from) {
            return CoordinatorAction::Wait;
        }
        self.votes.insert(from, vote);

        // A single NO decides abort immediately — no need to wait for the
        // remaining votes.
        if vote == Vote::No {
            return self.decide(Decision::Abort);
        }
        if self.votes.len() == self.participants.len() {
            let unanimous_yes = self.votes.values().all(|v| v.is_yes());
            if !unanimous_yes {
                return self.decide(Decision::Abort);
            }
            return match self.protocol {
                AcpKind::TwoPhaseCommit => self.decide(Decision::Commit),
                AcpKind::ThreePhaseCommit => {
                    self.state = CoordinatorState::CollectingPreCommitAcks;
                    CoordinatorAction::SendPreCommit(self.participants())
                }
            };
        }
        CoordinatorAction::Wait
    }

    /// Records a 3PC pre-commit acknowledgement; when all are in, the final
    /// COMMIT is distributed.
    pub fn on_precommit_ack(&mut self, from: SiteId) -> CoordinatorAction {
        if self.state != CoordinatorState::CollectingPreCommitAcks
            || !self.participants.contains(&from)
        {
            return CoordinatorAction::Wait;
        }
        self.precommit_acks.insert(from);
        if self.precommit_acks.len() == self.participants.len() {
            return self.decide(Decision::Commit);
        }
        CoordinatorAction::Wait
    }

    /// Records a final acknowledgement of the decision.
    pub fn on_ack(&mut self, from: SiteId) -> CoordinatorAction {
        if self.state != CoordinatorState::CollectingAcks || !self.participants.contains(&from) {
            return CoordinatorAction::Wait;
        }
        self.acks.insert(from);
        if self.acks.len() == self.participants.len() {
            self.state = CoordinatorState::Completed;
            return CoordinatorAction::Complete(
                self.decision
                    .expect("decision must exist in CollectingAcks"),
            );
        }
        CoordinatorAction::Wait
    }

    /// The coordinator timed out waiting for the current phase.
    ///
    /// * waiting for votes — decide abort (a missing vote is a NO);
    /// * waiting for 3PC pre-commit acks — the protocol still commits (the
    ///   cohort is all prepared-to-commit); unreachable participants will
    ///   learn the decision from the termination protocol;
    /// * waiting for final acks — give up waiting and complete; participants
    ///   that missed the decision resolve it on recovery.
    pub fn on_timeout(&mut self) -> CoordinatorAction {
        match self.state {
            CoordinatorState::CollectingVotes => self.decide(Decision::Abort),
            CoordinatorState::CollectingPreCommitAcks => self.decide(Decision::Commit),
            CoordinatorState::CollectingAcks => {
                self.state = CoordinatorState::Completed;
                CoordinatorAction::Complete(
                    self.decision
                        .expect("decision must exist in CollectingAcks"),
                )
            }
            CoordinatorState::Completed => CoordinatorAction::Wait,
        }
    }

    /// Votes received so far (for the progress monitor).
    pub fn votes_received(&self) -> usize {
        self.votes.len()
    }

    /// Acks received so far.
    pub fn acks_received(&self) -> usize {
        self.acks.len()
    }

    fn decide(&mut self, decision: Decision) -> CoordinatorAction {
        self.decision = Some(decision);
        self.state = CoordinatorState::CollectingAcks;
        CoordinatorAction::SendDecision(decision, self.participants())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn txn() -> TxnId {
        TxnId::new(SiteId(0), 1)
    }

    fn sites(n: u32) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    #[test]
    fn two_pc_happy_path() {
        let mut c = Coordinator::new(txn(), AcpKind::TwoPhaseCommit, sites(3));
        assert_eq!(c.start(), CoordinatorAction::SendPrepare(sites(3)));
        assert_eq!(c.state(), CoordinatorState::CollectingVotes);

        assert_eq!(c.on_vote(SiteId(0), Vote::Yes), CoordinatorAction::Wait);
        assert_eq!(c.on_vote(SiteId(1), Vote::Yes), CoordinatorAction::Wait);
        assert_eq!(
            c.on_vote(SiteId(2), Vote::Yes),
            CoordinatorAction::SendDecision(Decision::Commit, sites(3))
        );
        assert_eq!(c.decision(), Some(Decision::Commit));
        assert_eq!(c.state(), CoordinatorState::CollectingAcks);

        assert_eq!(c.on_ack(SiteId(0)), CoordinatorAction::Wait);
        assert_eq!(c.on_ack(SiteId(1)), CoordinatorAction::Wait);
        assert_eq!(
            c.on_ack(SiteId(2)),
            CoordinatorAction::Complete(Decision::Commit)
        );
        assert_eq!(c.state(), CoordinatorState::Completed);
        assert_eq!(c.votes_received(), 3);
        assert_eq!(c.acks_received(), 3);
    }

    #[test]
    fn a_single_no_vote_aborts_immediately() {
        let mut c = Coordinator::new(txn(), AcpKind::TwoPhaseCommit, sites(3));
        c.start();
        assert_eq!(c.on_vote(SiteId(0), Vote::Yes), CoordinatorAction::Wait);
        assert_eq!(
            c.on_vote(SiteId(1), Vote::No),
            CoordinatorAction::SendDecision(Decision::Abort, sites(3))
        );
        assert_eq!(c.decision(), Some(Decision::Abort));
        // A late vote is ignored.
        assert_eq!(c.on_vote(SiteId(2), Vote::Yes), CoordinatorAction::Wait);
        assert_eq!(c.decision(), Some(Decision::Abort));
    }

    #[test]
    fn vote_timeout_aborts() {
        let mut c = Coordinator::new(txn(), AcpKind::TwoPhaseCommit, sites(2));
        c.start();
        c.on_vote(SiteId(0), Vote::Yes);
        assert_eq!(
            c.on_timeout(),
            CoordinatorAction::SendDecision(Decision::Abort, sites(2))
        );
        assert_eq!(c.decision(), Some(Decision::Abort));
    }

    #[test]
    fn ack_timeout_completes_with_existing_decision() {
        let mut c = Coordinator::new(txn(), AcpKind::TwoPhaseCommit, sites(2));
        c.start();
        c.on_vote(SiteId(0), Vote::Yes);
        c.on_vote(SiteId(1), Vote::Yes);
        c.on_ack(SiteId(0));
        assert_eq!(
            c.on_timeout(),
            CoordinatorAction::Complete(Decision::Commit)
        );
        assert_eq!(c.state(), CoordinatorState::Completed);
        // Further events are ignored.
        assert_eq!(c.on_timeout(), CoordinatorAction::Wait);
        assert_eq!(c.on_ack(SiteId(1)), CoordinatorAction::Wait);
    }

    #[test]
    fn empty_participant_set_commits_immediately() {
        let mut c = Coordinator::new(txn(), AcpKind::TwoPhaseCommit, Vec::<SiteId>::new());
        assert_eq!(c.start(), CoordinatorAction::Complete(Decision::Commit));
        assert_eq!(c.state(), CoordinatorState::Completed);
    }

    #[test]
    fn three_pc_inserts_precommit_round() {
        let mut c = Coordinator::new(txn(), AcpKind::ThreePhaseCommit, sites(2));
        assert_eq!(c.start(), CoordinatorAction::SendPrepare(sites(2)));
        c.on_vote(SiteId(0), Vote::Yes);
        assert_eq!(
            c.on_vote(SiteId(1), Vote::Yes),
            CoordinatorAction::SendPreCommit(sites(2))
        );
        assert_eq!(c.state(), CoordinatorState::CollectingPreCommitAcks);
        assert_eq!(
            c.decision(),
            None,
            "3PC must not decide before pre-commit acks"
        );

        assert_eq!(c.on_precommit_ack(SiteId(0)), CoordinatorAction::Wait);
        assert_eq!(
            c.on_precommit_ack(SiteId(1)),
            CoordinatorAction::SendDecision(Decision::Commit, sites(2))
        );
        assert_eq!(c.on_ack(SiteId(0)), CoordinatorAction::Wait);
        assert_eq!(
            c.on_ack(SiteId(1)),
            CoordinatorAction::Complete(Decision::Commit)
        );
    }

    #[test]
    fn three_pc_no_vote_skips_precommit_and_aborts() {
        let mut c = Coordinator::new(txn(), AcpKind::ThreePhaseCommit, sites(2));
        c.start();
        assert_eq!(
            c.on_vote(SiteId(0), Vote::No),
            CoordinatorAction::SendDecision(Decision::Abort, sites(2))
        );
        assert_eq!(c.decision(), Some(Decision::Abort));
    }

    #[test]
    fn three_pc_precommit_timeout_still_commits() {
        let mut c = Coordinator::new(txn(), AcpKind::ThreePhaseCommit, sites(3));
        c.start();
        for s in sites(3) {
            c.on_vote(s, Vote::Yes);
        }
        c.on_precommit_ack(SiteId(0));
        assert_eq!(
            c.on_timeout(),
            CoordinatorAction::SendDecision(Decision::Commit, sites(3))
        );
    }

    #[test]
    fn votes_from_unknown_sites_are_ignored() {
        let mut c = Coordinator::new(txn(), AcpKind::TwoPhaseCommit, sites(2));
        c.start();
        assert_eq!(c.on_vote(SiteId(9), Vote::No), CoordinatorAction::Wait);
        assert_eq!(c.decision(), None);
        assert_eq!(c.on_ack(SiteId(9)), CoordinatorAction::Wait);
    }

    #[test]
    fn accessors_report_configuration() {
        let c = Coordinator::new(txn(), AcpKind::ThreePhaseCommit, sites(2));
        assert_eq!(c.txn(), txn());
        assert_eq!(c.protocol(), AcpKind::ThreePhaseCommit);
        assert_eq!(c.participants(), sites(2));
    }
}
