//! # rainbow-commit
//!
//! Atomic commitment protocols (ACP) of the Rainbow reproduction: Two-Phase
//! Commit (2PC, the Rainbow default) and Three-Phase Commit (3PC, the
//! non-blocking extension the paper suggests as a term project).
//!
//! Section 2.1: "When all operations of a transaction are processed by the
//! RCP, the home site initiates a two-phase commit session, the default ACP
//! in Rainbow. When commitment terminates, the transaction is complete and
//! the thread finishes."
//!
//! The crate contains the *pure* coordinator and participant state machines,
//! decoupled from messaging and storage so they can be tested exhaustively
//! (including the blocking window of 2PC and the timeout transitions of 3PC):
//!
//! * [`types`] — votes, decisions and the actions the state machines emit;
//! * [`coordinator`] — the home-site side: collect votes, decide, distribute
//!   the decision, collect acknowledgements (with the extra pre-commit round
//!   when running 3PC);
//! * [`participant`] — the copy-holder side: vote, wait for the decision,
//!   and apply the 2PC/3PC timeout rules (2PC prepared ⇒ blocked, 3PC
//!   prepared ⇒ abort, 3PC pre-committed ⇒ commit);
//! * [`termination`] — the cooperative termination protocol a recovering or
//!   blocked participant runs against its peers.
//!
//! The transaction manager in `rainbow-core` drives these machines over the
//! simulated network and performs the log forces the protocol requires
//! (force-prepare before voting YES, force-commit before acknowledging).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod participant;
pub mod termination;
pub mod types;

pub use coordinator::{Coordinator, CoordinatorAction, CoordinatorState};
pub use participant::{Participant, ParticipantAction, ParticipantState};
pub use termination::resolve_by_peers;
pub use types::{Decision, Vote};
