//! # rainbow-check
//!
//! Transaction-history serializability checking for the Rainbow chaos
//! laboratory.
//!
//! The paper's whole premise is *experimental research on protocol behavior
//! under faults* — and an experiment needs a verdict stronger than "no test
//! assertion fired". This crate delivers that verdict from first principles:
//! given the cluster-wide [`History`] a run produced (see
//! `rainbow_common::history`), it decides whether the run was
//! **serializable** — equivalent to *some* serial execution of its committed
//! transactions — and, independently, whether every read respected
//! **per-item register semantics** (each read returned exactly the value the
//! committed write of its observed version installed).
//!
//! The serializability test builds the classic *direct serialization graph*
//! (DSG, Adya's terminology): one node per committed transaction and an edge
//! per dependency —
//!
//! * **wr** (read-from): the writer of version `v` precedes every reader
//!   of `v`;
//! * **ww** (version order): writes of the same item precede each other in
//!   version order;
//! * **rw** (anti-dependency): a reader of version `v` precedes the writer
//!   of the next version after `v`.
//!
//! Rainbow's replica versions make all three edge sets *exact*: every read
//! records the version it observed, every write the version it installed,
//! so no order needs to be inferred. A cycle in the graph means no serial
//! order explains the run — the history is rejected with the cycle as the
//! witness. Lost updates, fractured reads and write skew all surface as
//! such cycles; [`fixtures`] packages canonical examples of each, and the
//! self-tests prove the checker rejects them.
//!
//! [`History`]: rainbow_common::History

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod fixtures;

pub use checker::{check_history, CheckReport, Violation};
