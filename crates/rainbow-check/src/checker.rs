//! The history checker: register semantics + DSG cycle detection.

use rainbow_common::history::{History, TxnRecord};
use rainbow_common::{ItemId, TxnId, Value, Version};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// The kind of dependency an edge of the serialization graph encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-from: the writer of a version precedes its readers.
    WriteRead,
    /// Version order: writes of the same item in version order.
    WriteWrite,
    /// Anti-dependency: a reader of a version precedes the writer of the
    /// next version of that item.
    ReadWrite,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::WriteRead => write!(f, "wr"),
            DepKind::WriteWrite => write!(f, "ww"),
            DepKind::ReadWrite => write!(f, "rw"),
        }
    }
}

/// One step of a reported dependency cycle: this transaction reaches the
/// next one (cyclically) through an edge of the given kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleStep {
    /// The transaction.
    pub txn: TxnId,
    /// The dependency leading to the next transaction in the cycle.
    pub edge: DepKind,
}

/// A way the history failed the check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A committed transaction observed a version installed by a transaction
    /// that aborted.
    DirtyRead {
        /// The reader.
        reader: TxnId,
        /// The item.
        item: ItemId,
        /// The observed version.
        version: Version,
        /// The aborted transaction that wrote it.
        writer: TxnId,
    },
    /// A committed transaction observed a version no known transaction
    /// installed (and which is not the initial version).
    UnknownVersion {
        /// The reader.
        reader: TxnId,
        /// The item.
        item: ItemId,
        /// The unexplained version.
        version: Version,
    },
    /// A read returned a value different from the one the committed write
    /// of its observed version installed — the per-item register broke.
    ValueMismatch {
        /// The reader.
        reader: TxnId,
        /// The item.
        item: ItemId,
        /// The observed version.
        version: Version,
        /// The value the reader saw.
        observed: Value,
        /// The value the version's writer installed (`None` when the
        /// version is the initial one and the item has no initial value on
        /// record).
        installed: Option<Value>,
    },
    /// Two distinct committed transactions installed the same version of the
    /// same item — split-brain in the replication layer.
    ConflictingVersions {
        /// The item.
        item: ItemId,
        /// The colliding version.
        version: Version,
        /// The transactions that each claim to have installed it.
        writers: Vec<TxnId>,
    },
    /// The direct serialization graph contains a dependency cycle: no serial
    /// order of the committed transactions explains the run.
    Cycle {
        /// The cycle, as transactions each reaching the next (the last
        /// step's edge closes back to the first transaction).
        steps: Vec<CycleStep>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DirtyRead {
                reader,
                item,
                version,
                writer,
            } => write!(
                f,
                "dirty read: {reader} observed {item}@{version} written by aborted {writer}"
            ),
            Violation::UnknownVersion {
                reader,
                item,
                version,
            } => write!(
                f,
                "unknown version: {reader} observed {item}@{version} which nobody installed"
            ),
            Violation::ValueMismatch {
                reader,
                item,
                version,
                observed,
                installed,
            } => write!(
                f,
                "register violation: {reader} read {item}@{version} = {observed:?}, \
                 but that version holds {installed:?}"
            ),
            Violation::ConflictingVersions {
                item,
                version,
                writers,
            } => {
                write!(f, "conflicting installs of {item}@{version} by ")?;
                for (i, w) in writers.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            Violation::Cycle { steps } => {
                write!(f, "serialization cycle: ")?;
                for step in steps {
                    write!(f, "{} -{}-> ", step.txn, step.edge)?;
                }
                if let Some(first) = steps.first() {
                    write!(f, "{}", first.txn)?;
                }
                Ok(())
            }
        }
    }
}

/// The checker's verdict over one history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Transactions whose coordinator decided commit.
    pub committed: usize,
    /// Orphaned-outcome transactions promoted to committed because a
    /// committed transaction observed one of their versions (their commit
    /// happened even though the coordinator never saw the decision).
    pub inferred_committed: usize,
    /// Aborted transactions.
    pub aborted: usize,
    /// Orphaned transactions that stayed unknown (not promoted).
    pub orphaned: usize,
    /// Dependency edges in the serialization graph.
    pub edges: usize,
    /// Everything that failed, empty for a clean history.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// True when the history passed every check.
    pub fn is_serializable(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} committed (+{} inferred), {} aborted, {} orphaned, {} edges, {}",
            self.committed,
            self.inferred_committed,
            self.aborted,
            self.orphaned,
            self.edges,
            if self.is_serializable() {
                "serializable".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )
    }
}

/// Checks a history: register semantics per item, then DSG acyclicity over
/// the committed transactions. See the crate docs for the model.
pub fn check_history(history: &History) -> CheckReport {
    let mut violations = Vec::new();

    // ------------------------------------------------------------------
    // Classify records. Orphaned transactions whose installed versions were
    // observed by a committed reader must have committed (quorum reads only
    // return installed copies), so they join the graph.
    // ------------------------------------------------------------------
    let mut committed: Vec<&TxnRecord> = Vec::new();
    let mut aborted_writes: HashMap<(ItemId, Version), TxnId> = HashMap::new();
    let mut orphans: Vec<&TxnRecord> = Vec::new();
    let mut aborted = 0usize;
    for record in &history.records {
        match &record.outcome {
            rainbow_common::txn::TxnOutcome::Committed => committed.push(record),
            rainbow_common::txn::TxnOutcome::Aborted(_) => {
                aborted += 1;
                for write in &record.writes {
                    aborted_writes.insert((write.item.clone(), write.version), record.txn);
                }
            }
            rainbow_common::txn::TxnOutcome::Orphaned => orphans.push(record),
        }
    }
    // Promote to a fixpoint: a promoted orphan's reads are observations
    // too, so an orphan chain (O1's write observed only by promoted O2)
    // promotes transitively instead of leaving O1 behind as a false
    // UnknownVersion.
    let mut observed: BTreeSet<(ItemId, Version)> = committed
        .iter()
        .flat_map(|r| r.reads.iter().map(|read| (read.item.clone(), read.version)))
        .collect();
    let committed_count = committed.len();
    let mut inferred_committed = 0usize;
    loop {
        let (promoted, remaining): (Vec<&TxnRecord>, Vec<&TxnRecord>) =
            orphans.into_iter().partition(|record| {
                record
                    .writes
                    .iter()
                    .any(|w| observed.contains(&(w.item.clone(), w.version)))
            });
        orphans = remaining;
        if promoted.is_empty() {
            break;
        }
        inferred_committed += promoted.len();
        for record in &promoted {
            observed.extend(
                record
                    .reads
                    .iter()
                    .map(|read| (read.item.clone(), read.version)),
            );
        }
        committed.extend(promoted);
    }
    let orphaned = orphans.len();

    // ------------------------------------------------------------------
    // Index writers: (item, version) -> (node, value). A version installed
    // by two distinct committed transactions is split-brain.
    // ------------------------------------------------------------------
    let node_of: HashMap<TxnId, usize> = committed
        .iter()
        .enumerate()
        .map(|(i, r)| (r.txn, i))
        .collect();
    let mut writers: HashMap<(ItemId, Version), (usize, Value)> = HashMap::new();
    for (node, record) in committed.iter().enumerate() {
        for write in &record.writes {
            let key = (write.item.clone(), write.version);
            match writers.get(&key) {
                Some((prev, _)) if *prev != node => {
                    violations.push(Violation::ConflictingVersions {
                        item: write.item.clone(),
                        version: write.version,
                        writers: vec![committed[*prev].txn, record.txn],
                    });
                }
                // Re-writes of the same item inside one transaction may
                // reuse a version; the last value stands.
                _ => {
                    writers.insert(key, (node, write.value.clone()));
                }
            }
        }
    }

    // Per-item version chains (ascending), for ww and rw edges.
    let mut chains: BTreeMap<ItemId, BTreeMap<Version, usize>> = BTreeMap::new();
    for ((item, version), (node, _)) in &writers {
        chains
            .entry(item.clone())
            .or_default()
            .insert(*version, *node);
    }

    // ------------------------------------------------------------------
    // Register semantics: every committed read returns exactly the value
    // its observed version carries.
    // ------------------------------------------------------------------
    for record in &committed {
        for read in &record.reads {
            let key = (read.item.clone(), read.version);
            if read.version == Version::INITIAL {
                match history.initial.get(&read.item) {
                    Some(initial) if *initial == read.value => {}
                    installed => violations.push(Violation::ValueMismatch {
                        reader: record.txn,
                        item: read.item.clone(),
                        version: read.version,
                        observed: read.value.clone(),
                        installed: installed.cloned(),
                    }),
                }
                continue;
            }
            match writers.get(&key) {
                Some((_, value)) if *value == read.value => {}
                Some((_, value)) => violations.push(Violation::ValueMismatch {
                    reader: record.txn,
                    item: read.item.clone(),
                    version: read.version,
                    observed: read.value.clone(),
                    installed: Some(value.clone()),
                }),
                None => match aborted_writes.get(&key) {
                    Some(writer) => violations.push(Violation::DirtyRead {
                        reader: record.txn,
                        item: read.item.clone(),
                        version: read.version,
                        writer: *writer,
                    }),
                    None => violations.push(Violation::UnknownVersion {
                        reader: record.txn,
                        item: read.item.clone(),
                        version: read.version,
                    }),
                },
            }
        }
    }

    // ------------------------------------------------------------------
    // The direct serialization graph.
    // ------------------------------------------------------------------
    let n = committed.len();
    let mut adjacency: Vec<Vec<(usize, DepKind)>> = vec![Vec::new(); n];
    let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
    let add_edge = |adjacency: &mut Vec<Vec<(usize, DepKind)>>,
                    edge_set: &mut BTreeSet<(usize, usize)>,
                    from: usize,
                    to: usize,
                    kind: DepKind| {
        if from != to && edge_set.insert((from, to)) {
            adjacency[from].push((to, kind));
        }
    };

    // ww: version order per item.
    for chain in chains.values() {
        let nodes: Vec<usize> = chain.values().copied().collect();
        for pair in nodes.windows(2) {
            add_edge(
                &mut adjacency,
                &mut edge_set,
                pair[0],
                pair[1],
                DepKind::WriteWrite,
            );
        }
    }

    // wr and rw per committed read.
    for record in &committed {
        let reader = node_of[&record.txn];
        for read in &record.reads {
            if let Some((writer, _)) = writers.get(&(read.item.clone(), read.version)) {
                add_edge(
                    &mut adjacency,
                    &mut edge_set,
                    *writer,
                    reader,
                    DepKind::WriteRead,
                );
            }
            if let Some(chain) = chains.get(&read.item) {
                // The writer of the next version (skipping the reader's own
                // writes: reading before overwriting is always consistent).
                if let Some(next) = chain
                    .range((
                        std::ops::Bound::Excluded(read.version),
                        std::ops::Bound::Unbounded,
                    ))
                    .map(|(_, node)| *node)
                    .find(|node| *node != reader)
                {
                    add_edge(
                        &mut adjacency,
                        &mut edge_set,
                        reader,
                        next,
                        DepKind::ReadWrite,
                    );
                }
            }
        }
    }

    if let Some(cycle) = find_cycle(&adjacency) {
        violations.push(Violation::Cycle {
            steps: cycle
                .into_iter()
                .map(|(node, edge)| CycleStep {
                    txn: committed[node].txn,
                    edge,
                })
                .collect(),
        });
    }

    CheckReport {
        committed: committed_count,
        inferred_committed,
        aborted,
        orphaned,
        edges: edge_set.len(),
        violations,
    }
}

/// Finds one dependency cycle, if any: iterative three-color DFS; the
/// returned steps list each node of the cycle with the edge kind leading to
/// the next (the last edge closes back to the first node).
fn find_cycle(adjacency: &[Vec<(usize, DepKind)>]) -> Option<Vec<(usize, DepKind)>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = adjacency.len();
    let mut color = vec![Color::White; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        // Stack frames: (node, index of the next edge to explore).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Gray;
        while let Some(&(node, edge_index)) = stack.last() {
            if let Some(&(next, kind)) = adjacency[node].get(edge_index) {
                stack.last_mut().expect("frame exists").1 += 1;
                match color[next] {
                    Color::Gray => {
                        // Cycle: the frames from `next` to the top, each
                        // contributing the edge it took to its successor.
                        let from = stack
                            .iter()
                            .position(|(frame, _)| *frame == next)
                            .expect("gray node is on the stack");
                        let mut steps = Vec::new();
                        for window in stack[from..].windows(2) {
                            let (frame, next_index) = window[0];
                            // The edge this frame used to reach window[1] is
                            // the one *before* its next-edge cursor.
                            let (_, edge) = adjacency[frame][next_index - 1];
                            debug_assert_eq!(adjacency[frame][next_index - 1].0, window[1].0);
                            steps.push((frame, edge));
                        }
                        steps.push((node, kind));
                        return Some(steps);
                    }
                    Color::White => {
                        color[next] = Color::Gray;
                        stack.push((next, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::history::TxnRecord;
    use rainbow_common::txn::{AbortCause, TxnOutcome};
    use rainbow_common::SiteId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn base() -> History {
        History::with_initial([
            (ItemId::new("x"), Value::Int(100)),
            (ItemId::new("y"), Value::Int(100)),
        ])
    }

    #[test]
    fn empty_history_is_serializable() {
        let report = check_history(&base());
        assert!(report.is_serializable());
        assert_eq!(report.edges, 0);
        assert!(report.summary().contains("serializable"));
    }

    #[test]
    fn serial_chain_passes_with_exact_edges() {
        let mut history = base();
        history.push(
            TxnRecord::new(txn(1), "w1", TxnOutcome::Committed)
                .with_read("x", 100i64, 0)
                .with_write("x", 1i64, 1),
        );
        history.push(
            TxnRecord::new(txn(2), "w2", TxnOutcome::Committed)
                .with_read("x", 1i64, 1)
                .with_write("x", 2i64, 2),
        );
        history.push(TxnRecord::new(txn(3), "r", TxnOutcome::Committed).with_read("x", 2i64, 2));
        let report = check_history(&history);
        assert!(report.is_serializable(), "{:?}", report.violations);
        assert_eq!(report.committed, 3);
        // Edges dedupe by endpoint pair: ww/wr/rw 1->2 collapse into one
        // edge, wr 2->3 is the other.
        assert_eq!(report.edges, 2);
    }

    #[test]
    fn stale_read_alone_is_serializable() {
        // Reading an old version is allowed by serializability (the reader
        // just serializes before the writer); only a *cycle* convicts.
        let mut history = base();
        history.push(TxnRecord::new(txn(1), "w", TxnOutcome::Committed).with_write("x", 5i64, 1));
        history.push(TxnRecord::new(txn(2), "r", TxnOutcome::Committed).with_read("x", 100i64, 0));
        let report = check_history(&history);
        assert!(report.is_serializable(), "{:?}", report.violations);
    }

    #[test]
    fn register_mismatch_is_flagged() {
        let mut history = base();
        history.push(TxnRecord::new(txn(1), "w", TxnOutcome::Committed).with_write("x", 5i64, 1));
        history.push(TxnRecord::new(txn(2), "r", TxnOutcome::Committed).with_read("x", 6i64, 1));
        let report = check_history(&history);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ValueMismatch { .. }]
        ));
        assert!(report.violations[0].to_string().contains("register"));
    }

    #[test]
    fn initial_value_mismatch_is_flagged() {
        let mut history = base();
        history.push(TxnRecord::new(txn(1), "r", TxnOutcome::Committed).with_read("x", 7i64, 0));
        let report = check_history(&history);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ValueMismatch { .. }]
        ));
    }

    #[test]
    fn dirty_and_unknown_reads_are_flagged() {
        let mut history = base();
        history.push(
            TxnRecord::new(txn(1), "a", TxnOutcome::Aborted(AbortCause::UserAbort))
                .with_write("x", 9i64, 1),
        );
        history.push(TxnRecord::new(txn(2), "r", TxnOutcome::Committed).with_read("x", 9i64, 1));
        history.push(TxnRecord::new(txn(3), "u", TxnOutcome::Committed).with_read("y", 3i64, 7));
        let report = check_history(&history);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DirtyRead { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnknownVersion { .. })));
    }

    #[test]
    fn conflicting_version_installs_are_flagged() {
        let mut history = base();
        history.push(TxnRecord::new(txn(1), "a", TxnOutcome::Committed).with_write("x", 1i64, 1));
        history.push(TxnRecord::new(txn(2), "b", TxnOutcome::Committed).with_write("x", 2i64, 1));
        let report = check_history(&history);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ConflictingVersions { .. })));
    }

    #[test]
    fn orphan_whose_write_was_observed_is_promoted() {
        let mut history = base();
        history.push(TxnRecord::new(txn(1), "o", TxnOutcome::Orphaned).with_write("x", 4i64, 1));
        history.push(TxnRecord::new(txn(2), "r", TxnOutcome::Committed).with_read("x", 4i64, 1));
        history.push(TxnRecord::new(txn(3), "g", TxnOutcome::Orphaned).with_write("y", 8i64, 1));
        let report = check_history(&history);
        assert!(report.is_serializable(), "{:?}", report.violations);
        assert_eq!(report.inferred_committed, 1);
        assert_eq!(report.orphaned, 1, "unobserved orphan stays unknown");
    }

    #[test]
    fn orphan_promotion_reaches_a_fixpoint_through_orphan_chains() {
        // O1's write is observed only by O2 (itself an orphan), whose write
        // a committed reader observed: both promote, and O2's read of O1's
        // version must not be reported as unexplained.
        let mut history = base();
        history.push(TxnRecord::new(txn(1), "o1", TxnOutcome::Orphaned).with_write("x", 4i64, 1));
        history.push(
            TxnRecord::new(txn(2), "o2", TxnOutcome::Orphaned)
                .with_read("x", 4i64, 1)
                .with_write("x", 5i64, 2),
        );
        history.push(TxnRecord::new(txn(3), "r", TxnOutcome::Committed).with_read("x", 5i64, 2));
        let report = check_history(&history);
        assert!(report.is_serializable(), "{:?}", report.violations);
        assert_eq!(report.inferred_committed, 2);
        assert_eq!(report.orphaned, 0);
    }

    #[test]
    fn cycle_report_names_the_transactions_and_edges() {
        // Classic lost update: both read x@0, both write new versions.
        let mut history = base();
        history.push(
            TxnRecord::new(txn(1), "t1", TxnOutcome::Committed)
                .with_read("x", 100i64, 0)
                .with_write("x", 110i64, 1),
        );
        history.push(
            TxnRecord::new(txn(2), "t2", TxnOutcome::Committed)
                .with_read("x", 100i64, 0)
                .with_write("x", 120i64, 2),
        );
        let report = check_history(&history);
        let cycle = report
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::Cycle { steps } => Some(steps),
                _ => None,
            })
            .expect("lost update must produce a cycle");
        assert!(cycle.len() >= 2);
        let mentioned: Vec<TxnId> = cycle.iter().map(|s| s.txn).collect();
        assert!(mentioned.contains(&txn(1)) && mentioned.contains(&txn(2)));
        let text = report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<String>();
        assert!(text.contains("cycle"));
    }

    #[test]
    fn report_serializes_for_artifact_upload() {
        let mut history = base();
        history.push(TxnRecord::new(txn(1), "w", TxnOutcome::Committed).with_write("x", 5i64, 1));
        let report = check_history(&history);
        let json = serde_json::to_string(&report).unwrap();
        let back: CheckReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
