//! Canonical anomaly histories the checker must reject.
//!
//! Each fixture is a hand-built [`History`] exhibiting one textbook
//! isolation anomaly, expressed exactly the way a chaos run would record it
//! (reads carry the observed version, writes the installed version). They
//! serve two purposes: the crate's self-tests prove the checker rejects
//! every one of them (a checker that accepts everything would be worse than
//! none), and they double as teaching material — each function's docs spell
//! out the anomaly's shape.

use rainbow_common::history::{History, TxnRecord};
use rainbow_common::txn::{AbortCause, TxnOutcome};
use rainbow_common::{ItemId, SiteId, TxnId, Value};

fn txn(seq: u64) -> TxnId {
    TxnId::new(SiteId(0), seq)
}

fn two_register_bank() -> History {
    History::with_initial([
        (ItemId::new("x"), Value::Int(100)),
        (ItemId::new("y"), Value::Int(100)),
    ])
}

/// **Lost update**: `T1` and `T2` both read `x` at its initial version and
/// both commit increments derived from that stale observation — one update
/// overwrites the other as if it never happened. In the serialization graph
/// each transaction anti-depends on the other (`T1 -rw-> T2` because `T1`
/// read what `T2` overwrote, and vice versa through the version chain), so
/// the cycle convicts the history.
pub fn lost_update() -> History {
    let mut history = two_register_bank();
    history.push(
        TxnRecord::new(txn(1), "deposit-10", TxnOutcome::Committed)
            .with_read("x", 100i64, 0)
            .with_write("x", 110i64, 1),
    );
    history.push(
        TxnRecord::new(txn(2), "deposit-20", TxnOutcome::Committed)
            .with_read("x", 100i64, 0)
            .with_write("x", 120i64, 2),
    );
    history
}

/// **Fractured read** (read skew): `T1` commits a two-item write (`x` and
/// `y` move together), and reader `T2` observes `x` *after* `T1` but `y`
/// *before* it — a state that never existed. The graph shows
/// `T1 -wr-> T2` (the fresh `x`) and `T2 -rw-> T1` (the stale `y`):
/// a two-node cycle.
pub fn fractured_read() -> History {
    let mut history = two_register_bank();
    history.push(
        TxnRecord::new(txn(1), "transfer", TxnOutcome::Committed)
            .with_write("x", 50i64, 1)
            .with_write("y", 150i64, 1),
    );
    history.push(
        TxnRecord::new(txn(2), "audit", TxnOutcome::Committed)
            .with_read("x", 50i64, 1)
            .with_read("y", 100i64, 0),
    );
    history
}

/// **Write skew**: `T1` reads `x` and writes `y`; `T2` reads `y` and writes
/// `x`, both from the initial state. Each read is individually current, yet
/// no serial order explains both (each transaction anti-depends on the
/// other: `T1 -rw-> T2` and `T2 -rw-> T1`). This is the anomaly snapshot
/// isolation famously admits and serializability forbids.
pub fn write_skew() -> History {
    let mut history = two_register_bank();
    history.push(
        TxnRecord::new(txn(1), "check-x-write-y", TxnOutcome::Committed)
            .with_read("x", 100i64, 0)
            .with_write("y", 0i64, 1),
    );
    history.push(
        TxnRecord::new(txn(2), "check-y-write-x", TxnOutcome::Committed)
            .with_read("y", 100i64, 0)
            .with_write("x", 0i64, 1),
    );
    history
}

/// **Dirty read**: `T2` observes a version installed by `T1`, which then
/// aborted. Rejected directly by the register-semantics pass (no cycle
/// needed).
pub fn dirty_read() -> History {
    let mut history = two_register_bank();
    history.push(
        TxnRecord::new(txn(1), "doomed", TxnOutcome::Aborted(AbortCause::UserAbort))
            .with_write("x", 666i64, 1),
    );
    history.push(TxnRecord::new(txn(2), "reader", TxnOutcome::Committed).with_read("x", 666i64, 1));
    history
}

/// **Divergent replicas** (split-brain): two committed transactions each
/// installed version 1 of `x` with different values — the replication layer
/// let both sides of a partition "win".
pub fn divergent_replicas() -> History {
    let mut history = two_register_bank();
    history.push(TxnRecord::new(txn(1), "left", TxnOutcome::Committed).with_write("x", 1i64, 1));
    history.push(TxnRecord::new(txn(2), "right", TxnOutcome::Committed).with_write("x", 2i64, 1));
    history
}

/// A clean serial history over the same schema: increments chained one
/// after another, each reading exactly what its predecessor installed. The
/// checker must accept it (and the self-tests verify that it does, so a
/// reject-everything checker cannot pass either).
pub fn committed_serial() -> History {
    let mut history = two_register_bank();
    let mut value = 100i64;
    for i in 1..=4u64 {
        history.push(
            TxnRecord::new(txn(i), format!("inc-{i}"), TxnOutcome::Committed)
                .with_read("x", value, i - 1)
                .with_write("x", value + 10, i),
        );
        value += 10;
    }
    history.push(
        TxnRecord::new(txn(5), "audit", TxnOutcome::Committed)
            .with_read("x", value, 4)
            .with_read("y", 100i64, 0),
    );
    history
}

/// Every fixture the checker must reject, with its name.
pub fn rejected() -> Vec<(&'static str, History)> {
    vec![
        ("lost-update", lost_update()),
        ("fractured-read", fractured_read()),
        ("write-skew", write_skew()),
        ("dirty-read", dirty_read()),
        ("divergent-replicas", divergent_replicas()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_history, Violation};

    #[test]
    fn every_anomaly_fixture_is_rejected() {
        for (name, history) in rejected() {
            let report = check_history(&history);
            assert!(
                !report.is_serializable(),
                "{name} must be rejected but passed: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn lost_update_and_skews_are_rejected_as_cycles() {
        for (name, history) in [
            ("lost-update", lost_update()),
            ("fractured-read", fractured_read()),
            ("write-skew", write_skew()),
        ] {
            let report = check_history(&history);
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::Cycle { .. })),
                "{name} must be convicted by a cycle: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn dirty_read_is_a_register_violation_not_a_cycle() {
        let report = check_history(&dirty_read());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DirtyRead { .. })));
    }

    #[test]
    fn divergent_replicas_are_a_version_conflict() {
        let report = check_history(&divergent_replicas());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ConflictingVersions { .. })));
    }

    #[test]
    fn committed_serial_history_passes() {
        let report = check_history(&committed_serial());
        assert!(report.is_serializable(), "{:?}", report.violations);
        assert_eq!(report.committed, 5);
    }
}
